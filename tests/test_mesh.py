"""Unit tests for the mesh substrate."""

import numpy as np
import pytest

from repro.common.errors import MeshError
from repro.mesh import (
    SimplexMesh,
    box,
    cantilever_2d,
    carve,
    interval_chain,
    rectangle,
    refine_uniform,
    tripod_3d,
    unit_cube,
    unit_square,
)


class TestConstruction:
    def test_rejects_bad_vertex_shape(self):
        with pytest.raises(MeshError):
            SimplexMesh(np.zeros((3, 4)), np.zeros((1, 5), dtype=int))

    def test_rejects_bad_cell_width(self):
        verts = np.array([[0.0, 0], [1, 0], [0, 1]])
        with pytest.raises(MeshError):
            SimplexMesh(verts, np.array([[0, 1]]))

    def test_rejects_out_of_range_index(self):
        verts = np.array([[0.0, 0], [1, 0], [0, 1]])
        with pytest.raises(MeshError):
            SimplexMesh(verts, np.array([[0, 1, 7]]))

    def test_rejects_inverted_cell(self):
        verts = np.array([[0.0, 0], [1, 0], [0, 1]])
        with pytest.raises(MeshError):
            SimplexMesh(verts, np.array([[0, 2, 1]]))

    def test_rejects_empty_mesh(self):
        with pytest.raises(MeshError):
            SimplexMesh(np.zeros((3, 2)), np.zeros((0, 3), dtype=int))


class TestRectangle:
    def test_counts(self):
        m = rectangle(4, 3)
        assert m.num_vertices == 5 * 4
        assert m.num_cells == 2 * 4 * 3

    def test_total_area(self):
        m = rectangle(5, 7, x0=-1, x1=3, y0=2, y1=4)
        assert m.total_volume() == pytest.approx(4 * 2)

    def test_boundary_vertex_count(self):
        m = unit_square(6)
        # boundary of an n x n grid has 4n vertices
        assert len(m.boundary_vertices) == 4 * 6

    def test_requires_positive_sizes(self):
        with pytest.raises(MeshError):
            rectangle(0, 3)


class TestBox:
    def test_total_volume(self):
        m = box(3, 2, 4, x1=2.0, y1=1.0, z1=3.0)
        assert m.total_volume() == pytest.approx(6.0)

    def test_cell_count_six_tets_per_hex(self):
        m = box(2, 2, 2)
        assert m.num_cells == 6 * 8

    def test_positive_volumes(self):
        m = unit_cube(3)
        assert np.all(m.cell_volumes() > 0)


class TestTopology:
    def test_dual_graph_symmetric(self):
        m = unit_square(5)
        g = m.dual_graph
        assert (g != g.T).nnz == 0

    def test_dual_graph_interior_triangle_has_3_neighbors(self):
        m = unit_square(8)
        deg = np.diff(m.dual_graph.indptr)
        assert deg.max() == 3
        assert deg.min() >= 1

    def test_facet_counts_euler_2d(self):
        m = unit_square(4)
        # Euler: V - E + F = 1 for a disc (F counts triangles)
        V, E, F = m.num_vertices, m.edges.shape[0], m.num_cells
        assert V - E + F == 1

    def test_boundary_facets_2d_count(self):
        m = unit_square(4)
        assert m.boundary_facets.shape[0] == 4 * 4

    def test_cell_facets_shape(self):
        m = unit_cube(2)
        assert m.cell_facets.shape == (m.num_cells, 4)

    def test_cell_edges_consistent(self):
        m = unit_square(3)
        ce = m.cell_edges
        edges = m.edges
        for c in range(m.num_cells):
            cell = m.cells[c]
            pairs = [(0, 1), (0, 2), (1, 2)]
            for k, (a, b) in enumerate(pairs):
                e = edges[ce[c, k]]
                assert set(e) == {cell[a], cell[b]}

    def test_vertex_adjacency_includes_diagonal(self):
        m = unit_square(3)
        assert np.all(m.vertex_adjacency.diagonal() == 1)


class TestGeometry:
    def test_centroids_inside_unit_square(self):
        m = unit_square(4)
        c = m.cell_centroids()
        assert np.all(c >= 0) and np.all(c <= 1)

    def test_diameters_structured(self):
        m = unit_square(4)
        h = m.cell_diameters()
        assert np.allclose(h, np.sqrt(2) / 4)

    def test_h_max(self):
        assert unit_square(8).h_max() == pytest.approx(np.sqrt(2) / 8)


class TestExtract:
    def test_extract_roundtrip(self):
        m = unit_square(4)
        ids = np.arange(0, m.num_cells, 2)
        sub, vmap, cmap = m.extract_cells(ids)
        assert np.array_equal(cmap, ids)
        assert np.allclose(sub.vertices, m.vertices[vmap])
        assert np.array_equal(vmap[sub.cells], m.cells[ids])

    def test_extract_volume(self):
        m = unit_square(4)
        vols = m.cell_volumes()
        ids = np.array([0, 5, 9])
        sub, _, _ = m.extract_cells(ids)
        assert sub.total_volume() == pytest.approx(vols[ids].sum())


class TestRefine:
    @pytest.mark.parametrize("gen,factor", [(lambda: unit_square(3), 4),
                                            (lambda: unit_cube(2), 8)])
    def test_cell_count(self, gen, factor):
        m = gen()
        r = refine_uniform(m)
        assert r.num_cells == factor * m.num_cells

    @pytest.mark.parametrize("gen", [lambda: unit_square(3),
                                     lambda: unit_cube(2),
                                     lambda: tripod_3d(2)])
    def test_volume_preserved(self, gen):
        m = gen()
        r = refine_uniform(m, 2)
        assert r.total_volume() == pytest.approx(m.total_volume())

    def test_refine_conforming(self):
        # a conforming refinement of a disc keeps Euler characteristic 1
        m = refine_uniform(unit_square(2), 2)
        V, E, F = m.num_vertices, m.edges.shape[0], m.num_cells
        assert V - E + F == 1

    def test_refined_3d_positive(self):
        r = refine_uniform(unit_cube(2), 1)
        assert np.all(r.cell_volumes() > 0)


class TestShapes:
    def test_cantilever_aspect(self):
        m = cantilever_2d(3, length=10.0, height=1.0)
        lo, hi = m.vertices.min(axis=0), m.vertices.max(axis=0)
        assert hi[0] - lo[0] == pytest.approx(10.0)
        assert hi[1] - lo[1] == pytest.approx(1.0)

    def test_tripod_nonempty_and_3d(self):
        m = tripod_3d(2)
        assert m.dim == 3
        assert m.num_cells > 100

    def test_carve_rejects_empty(self):
        m = unit_square(3)
        with pytest.raises(MeshError):
            carve(m, lambda c: np.zeros(len(c), dtype=bool))

    def test_interval_chain(self):
        m = interval_chain(5)
        assert m.num_cells == 10
