"""Tests for the extensions: Ritz deflation, abstract deflation,
deflated CG, non-overlapping pattern."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.common.errors import KrylovError, ReproError
from repro.core import (
    AbstractDeflation,
    CoarseOperator,
    OneLevelRAS,
    TwoLevelADEF1,
    arnoldi,
    harmonic_ritz_pairs,
    nonoverlapping_pattern,
    ritz_deflation,
)
from repro.krylov import cg, deflated_cg, gmres


@pytest.fixture(scope="module")
def bad_modes_operator():
    """SPD matrix with 4 isolated tiny eigenvalues + known eigvectors."""
    rng = np.random.default_rng(3)
    n = 150
    Q = np.linalg.qr(rng.standard_normal((n, n)))[0]
    eigs = np.concatenate([[1e-5, 1e-4, 1e-3, 1e-2],
                           np.linspace(1, 2, n - 4)])
    A = sp.csr_matrix(Q @ np.diag(eigs) @ Q.T)
    b = rng.standard_normal(n)
    return A, b, Q


class TestArnoldi:
    def test_relation(self, bad_modes_operator, rng):
        A, b, _ = bad_modes_operator
        V, H = arnoldi(lambda v: A @ v, b, 12)
        k = H.shape[1]
        lhs = np.column_stack([A @ V[:, j] for j in range(k)])
        assert np.allclose(lhs, V @ H, atol=1e-10)

    def test_orthonormal(self, bad_modes_operator):
        A, b, _ = bad_modes_operator
        V, H = arnoldi(lambda v: A @ v, b, 10)
        G = V.T @ V
        assert np.allclose(G, np.eye(G.shape[0]), atol=1e-10)

    def test_invalid_k(self, bad_modes_operator):
        A, b, _ = bad_modes_operator
        with pytest.raises(ReproError):
            arnoldi(lambda v: A @ v, b, 0)

    def test_zero_start(self, bad_modes_operator):
        A, b, _ = bad_modes_operator
        with pytest.raises(ReproError):
            arnoldi(lambda v: A @ v, np.zeros_like(b), 5)


class TestHarmonicRitz:
    def test_targets_smallest(self, bad_modes_operator):
        A, b, _ = bad_modes_operator
        V, H = arnoldi(lambda v: A @ v, b, 60)
        theta, Y = harmonic_ritz_pairs(H)
        # smallest harmonic Ritz values approximate the tiny eigenvalues
        assert np.abs(theta[0]) < 0.05


class TestRitzDeflation:
    def test_accelerates_one_level(self, diffusion_decomposition):
        dec = diffusion_decomposition
        ras = OneLevelRAS(dec)
        A = dec.problem.matrix()
        b = dec.problem.rhs()
        one = gmres(A, b, M=ras.apply, tol=1e-8, restart=80, maxiter=300)
        space = ritz_deflation(dec, ras, b, n_vectors=8)
        pre = TwoLevelADEF1(ras, CoarseOperator(space))
        two = gmres(A, b, M=pre.apply, tol=1e-8, restart=80, maxiter=300)
        assert two.converged
        assert two.iterations < one.iterations

    def test_coarse_dim(self, diffusion_decomposition):
        dec = diffusion_decomposition
        ras = OneLevelRAS(dec)
        space = ritz_deflation(dec, ras, dec.problem.rhs(), n_vectors=5)
        assert space.m == 5 * dec.num_subdomains or space.m == 5 * \
            len([s for s in dec.subdomains])

    def test_invalid_sizes(self, diffusion_decomposition):
        dec = diffusion_decomposition
        ras = OneLevelRAS(dec)
        with pytest.raises(ReproError):
            ritz_deflation(dec, ras, dec.problem.rhs(), n_vectors=50,
                           n_arnoldi=10)


class TestAbstractDeflation:
    def test_exact_eigenvector_deflation(self, bad_modes_operator):
        """Deflating the exact bad eigenvectors: GMRES converges like the
        well-conditioned remainder."""
        A, b, Q = bad_modes_operator
        ad = AbstractDeflation(A, Q[:, :4])
        res = gmres(A, b, M=ad.apply, tol=1e-10, restart=80, maxiter=300)
        plain = gmres(A, b, tol=1e-10, restart=80, maxiter=300)
        assert res.converged
        assert res.iterations < plain.iterations

    def test_correction_is_projection(self, bad_modes_operator, rng):
        """Q A Z = Z: the correction reproduces coarse vectors."""
        A, _, Q = bad_modes_operator
        Z = Q[:, :3]
        ad = AbstractDeflation(A, Z)
        y = rng.standard_normal(3)
        out = ad.correction(A @ (Z @ y))
        assert np.allclose(out, Z @ y, atol=1e-8)

    def test_projected_operator_kills_coarse_space(self, bad_modes_operator):
        A, _, Q = bad_modes_operator
        Z = Q[:, :3]
        ad = AbstractDeflation(A, Z)
        out = ad.projected_operator(Z[:, 0])
        assert np.abs(Z.T @ out).max() < 1e-8

    def test_with_smoother(self, bad_modes_operator):
        A, b, Q = bad_modes_operator
        M = sp.diags(1.0 / A.diagonal())
        ad = AbstractDeflation(A, Q[:, :4], M=M)
        res = gmres(A, b, M=ad.apply, tol=1e-10, restart=80, maxiter=300)
        assert res.converged

    def test_errors(self, bad_modes_operator):
        A, _, Q = bad_modes_operator
        with pytest.raises(ReproError):
            AbstractDeflation(A, Q[:, :0])
        with pytest.raises(ReproError):
            AbstractDeflation(sp.eye(3, format="csr"),
                              np.zeros((3, 5)))  # wide, not tall


class TestDeflatedCG:
    def test_beats_plain_cg(self, bad_modes_operator):
        A, b, Q = bad_modes_operator
        plain = cg(A, b, tol=1e-10, maxiter=2000)
        defl = deflated_cg(A, b, Q[:, :4], tol=1e-10, maxiter=2000)
        assert defl.converged
        assert defl.iterations < plain.iterations
        assert np.linalg.norm(A @ defl.x - b) < 1e-8 * np.linalg.norm(b)

    def test_with_jacobi(self, bad_modes_operator):
        A, b, Q = bad_modes_operator
        M = sp.diags(1.0 / A.diagonal())
        defl = deflated_cg(A, b, Q[:, :4], M=M, tol=1e-10, maxiter=2000)
        assert defl.converged

    def test_solution_exact_on_coarse_rhs(self, bad_modes_operator):
        """If b ∈ range(AZ), the coarse solve alone nails x."""
        A, _, Q = bad_modes_operator
        Z = Q[:, :4]
        xstar = Z @ np.array([1.0, -2.0, 0.5, 3.0])
        b = A @ xstar
        res = deflated_cg(A, b, Z, tol=1e-10, maxiter=50)
        assert np.allclose(res.x, xstar, atol=1e-7)

    def test_zero_rhs(self, bad_modes_operator):
        A, _, Q = bad_modes_operator
        res = deflated_cg(A, np.zeros(A.shape[0]), Q[:, :2])
        assert res.iterations == 0

    def test_errors(self, bad_modes_operator):
        A, b, Q = bad_modes_operator
        with pytest.raises(KrylovError):
            deflated_cg(A, b, Q[:, :0])
        with pytest.raises(KrylovError):
            deflated_cg(A, b, np.zeros((3, 1)))


class TestNonOverlappingPattern:
    def test_chain_distance_two(self):
        pattern = nonoverlapping_pattern([[1], [0, 2], [1, 3], [2]])
        # distance-2 pairs like (0, 2) must appear
        assert (0, 2) in pattern
        assert (2, 0) in pattern
        assert (0, 3) not in pattern

    def test_contains_overlapping_pattern(self):
        neighbors = [[1, 2], [0], [0]]
        pattern = nonoverlapping_pattern(neighbors)
        for i, nbrs in enumerate(neighbors):
            assert (i, i) in pattern
            for j in nbrs:
                assert (i, j) in pattern
