"""Nonsymmetric/indefinite workloads: assembly, coarse spaces, guards.

Covers the convection–diffusion (SUPG) and Helmholtz-with-absorption
forms, the extended-GenEO coarse space and its registry, and the
SPD-assumption guard sweep: every code path that silently assumed a
symmetric operator must now either branch on the detected asymmetry
flag or fail with a typed :class:`~repro.common.errors.SymmetryError`.
"""

from __future__ import annotations

import warnings

import numpy as np
import pytest
import scipy.sparse as sp

from repro import FaultPlan, FaultSpec, SchwarzSolver
from repro.common.errors import ReproError, SymmetryError
from repro.common.validation import matrix_is_symmetric
from repro.core.geneo import (
    available_coarse_spaces,
    extended_deflation,
    extended_pencil,
    get_coarse_space,
)
from repro.fem import channels_and_inclusions
from repro.fem.forms import (
    ConvectionDiffusionForm,
    DiffusionForm,
    HelmholtzForm,
    supg_tau,
)
from repro.fem.postprocess import energy_norm
from repro.mesh import unit_square


# ----------------------------------------------------------------------
# Workloads
# ----------------------------------------------------------------------

def convdiff_form(mesh, *, peclet=60.0, seed=3, contrast_scale=0.02):
    kappa = contrast_scale * channels_and_inclusions(mesh, seed=seed)
    beta = peclet * np.array([1.0, 0.4])
    return ConvectionDiffusionForm(degree=1, kappa=kappa, beta=beta)


def helmholtz_form(mesh, *, k=10.0, epsilon=0.3):
    return HelmholtzForm(degree=1, k=k, epsilon=epsilon)


@pytest.fixture(scope="module")
def mesh20():
    return unit_square(20)


@pytest.fixture(scope="module")
def convdiff_solver(mesh20):
    return SchwarzSolver(mesh20, convdiff_form(mesh20),
                         num_subdomains=6, nev=6)


# ----------------------------------------------------------------------
# Assembly properties
# ----------------------------------------------------------------------

class TestAssembly:
    def test_convdiff_is_nonsymmetric_and_flagged(self, mesh20):
        form = convdiff_form(mesh20)
        assert form.symmetric is False and form.spd is False
        from repro.dd import Problem
        A = Problem(mesh20, form).matrix()
        assert not matrix_is_symmetric(A)

    def test_advection_skew_symmetric_on_free_dofs(self, mesh20):
        # constant beta + homogeneous Dirichlet everywhere: the pure
        # advection matrix restricted to interior dofs is exactly
        # skew-symmetric (integration by parts, no boundary term)
        from repro.fem import FunctionSpace, assemble_advection
        space = FunctionSpace(mesh20, degree=1)
        C = assemble_advection(space, np.array([1.0, 0.4]))
        free = np.setdiff1d(np.arange(space.num_dofs),
                            space.boundary_dofs())
        Cf = C[np.ix_(free, free)]
        asym = abs(Cf + Cf.T).max()
        assert asym <= 1e-12 * max(1.0, abs(Cf).max())

    def test_supg_tau_limits(self, mesh20):
        h = mesh20.cell_diameters()
        # advection-dominated: tau -> h / (2 |beta|)
        tau = supg_tau(mesh20, np.array([1e6, 0.0]), 1.0)
        assert np.allclose(tau, h / (2e6), rtol=1e-3)
        # diffusion-dominated: tau -> h^2 / (12 kappa)
        tau = supg_tau(mesh20, np.array([1e-8, 0.0]), 1.0)
        assert np.allclose(tau, h * h / 12.0, rtol=1e-3)
        # no advection: tau = 0 (not NaN)
        tau = supg_tau(mesh20, np.array([0.0, 0.0]), 1.0)
        assert np.all(tau == 0.0)

    def test_geneo_surrogate_is_spd(self, mesh20):
        form = convdiff_form(mesh20)
        from repro.fem import FunctionSpace
        space = FunctionSpace(mesh20, degree=1)
        G = form.assemble_geneo_matrix(space)
        assert matrix_is_symmetric(G)
        free = np.setdiff1d(np.arange(space.num_dofs),
                            space.boundary_dofs())
        w = np.linalg.eigvalsh(G[np.ix_(free, free)].toarray())
        assert w.min() > 0

    def test_helmholtz_symmetric_indefinite(self, mesh20):
        form = helmholtz_form(mesh20, k=12.0)
        assert form.symmetric is True and form.spd is False
        from repro.dd import Problem
        A = Problem(mesh20, form).matrix()   # already reduced to free dofs
        assert matrix_is_symmetric(A)
        w = np.linalg.eigvalsh(A.toarray())
        assert w.min() < 0 < w.max()


# ----------------------------------------------------------------------
# Symmetry detection + driver dispatch
# ----------------------------------------------------------------------

class TestDriverDispatch:
    def test_asymmetry_detected_once_on_decomposition(self, convdiff_solver):
        dec = convdiff_solver.decomposition
        assert dec.is_symmetric is False and dec.is_spd is False
        assert convdiff_solver.is_symmetric is False
        assert convdiff_solver.coarse_space_name == "extended"

    def test_helmholtz_symmetric_but_not_spd(self, mesh20):
        s = SchwarzSolver(mesh20, helmholtz_form(mesh20),
                          num_subdomains=4, nev=4)
        assert s.is_symmetric is True and s.is_spd is False
        assert s.coarse_space_name == "extended"

    def test_spd_problem_keeps_geneo(self, mesh20):
        s = SchwarzSolver(
            mesh20,
            DiffusionForm(degree=1,
                          kappa=channels_and_inclusions(mesh20, seed=3)),
            num_subdomains=4, nev=4)
        assert s.is_spd is True
        assert s.coarse_space_name == "geneo"

    @pytest.mark.parametrize("krylov", ["cg", "deflated-cg"])
    @pytest.mark.parametrize("builder", [convdiff_form, helmholtz_form])
    def test_cg_family_rejected(self, mesh20, krylov, builder):
        with pytest.raises(SymmetryError, match="SPD"):
            SchwarzSolver(mesh20, builder(mesh20),
                          num_subdomains=4, nev=4, krylov=krylov)

    @pytest.mark.parametrize("krylov", ["gmres", "fgmres", "sstep"])
    @pytest.mark.parametrize("builder", [convdiff_form, helmholtz_form])
    def test_nonsymmetric_drivers_converge(self, mesh20, krylov, builder):
        solver = SchwarzSolver(mesh20, builder(mesh20),
                               num_subdomains=6, nev=6, krylov=krylov)
        report = solver.solve(tol=1e-7, maxiter=300)
        assert report.converged
        x = report.x
        assert np.all(np.isfinite(x)) and np.linalg.norm(x) > 0


# ----------------------------------------------------------------------
# Extended coarse space
# ----------------------------------------------------------------------

class TestExtendedCoarseSpace:
    def test_registry_contents(self):
        names = available_coarse_spaces()
        assert {"geneo", "extended", "nicolaides"} <= set(names)
        with pytest.raises(ReproError, match="unknown coarse space"):
            get_coarse_space("no-such-space")

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_COARSE_SPACE", "nicolaides")
        name, _ = get_coarse_space(None, operator_is_spd=False)
        assert name == "nicolaides"

    def test_auto_selection(self, monkeypatch):
        monkeypatch.delenv("REPRO_COARSE_SPACE", raising=False)
        assert get_coarse_space(None, operator_is_spd=True)[0] == "geneo"
        assert get_coarse_space(None,
                                operator_is_spd=False)[0] == "extended"

    def test_extended_pencil_spd_and_orthonormal(self, convdiff_solver):
        sub = convdiff_solver.decomposition.subdomains[0]
        A_ext, B = extended_pencil(sub)
        assert matrix_is_symmetric(sp.csr_matrix(A_ext))
        res = extended_deflation(sub, nev=4)
        W = res.W
        assert W.shape[1] >= 1
        # non-Hermitian-safe orthonormalisation: Euclidean QR columns
        G = W.T @ W
        assert np.allclose(G, np.eye(G.shape[0]), atol=1e-10)

    def test_extended_beats_symmetric_geneo(self, mesh20):
        # the ISSUE's headline: on a strongly advective problem the
        # extended coarse space should need no more iterations than
        # symmetrize-and-hope GenEO, and far fewer than one-level
        form = convdiff_form(mesh20, peclet=120.0, contrast_scale=0.005)
        its = {}
        for name, levels in (("extended", 2), ("geneo", 2), (None, 1)):
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", RuntimeWarning)
                s = SchwarzSolver(mesh20, form, num_subdomains=6, nev=6,
                                  levels=levels, coarse_space=name)
                try:
                    its[name] = s.solve(tol=1e-7, maxiter=400).iterations
                except ReproError:
                    its[name] = 400
        assert its["extended"] <= its["geneo"]
        assert 2 * its["extended"] <= its[None]


# ----------------------------------------------------------------------
# Kernel backends on nonsymmetric operators
# ----------------------------------------------------------------------

class TestKernelBackends:
    def test_symmetric_ldl_rejects_nonsymmetric(self):
        from repro.kernels.factor import SymmetricLDLFactorization
        A = sp.csr_matrix(np.array([[4.0, 1.0], [0.0, 3.0]]))
        with pytest.raises(SymmetryError):
            SymmetricLDLFactorization(A)

    @pytest.mark.parametrize("backend,counter", [
        ("fp32", "kernel.fp32_nonsymmetric_locals"),
        ("compiled", "kernel.compiled_nonsymmetric_locals"),
    ])
    def test_backends_agree_with_numpy(self, mesh20, backend, counter):
        from repro.obs import Recorder
        form = convdiff_form(mesh20)
        ref = SchwarzSolver(mesh20, form, num_subdomains=6,
                            nev=6).solve(tol=1e-8)
        rec = Recorder()
        solver = SchwarzSolver(mesh20, form, num_subdomains=6, nev=6,
                               kernel_backend=backend, recorder=rec)
        rep = solver.solve(tol=1e-8)
        assert rep.converged
        xtol = 1e-5 if backend == "fp32" else 1e-9
        assert np.linalg.norm(rep.x - ref.x) <= \
            xtol * np.linalg.norm(ref.x)
        # every local factorization must have taken the documented
        # general-LU fallback, not the symmetric-mode LDL
        assert rec.counters.get(counter, 0) == 6


# ----------------------------------------------------------------------
# Coarse-strategy fallbacks (eigh -> SVD)
# ----------------------------------------------------------------------

class TestCoarseStrategyFallbacks:
    def test_pseudoinverse_svd_route(self):
        from repro.core.coarse_strategies.direct import _PseudoInverse
        rng = np.random.default_rng(7)
        M = rng.standard_normal((12, 12))
        M[:, -1] = M[:, 0]              # make it singular
        E = sp.csr_matrix(M)
        pinv = _PseudoInverse(E, 1e-10)
        assert pinv.rank == 11
        b = rng.standard_normal(12)
        x = pinv.solve(b)
        ref = np.linalg.pinv(M, rcond=1e-10) @ b
        assert np.allclose(x, ref, atol=1e-8)

    def test_pseudoinverse_symmetric_unchanged(self):
        from repro.core.coarse_strategies.direct import _PseudoInverse
        rng = np.random.default_rng(8)
        Q = np.linalg.qr(rng.standard_normal((10, 10)))[0]
        w = np.concatenate([np.linspace(1.0, 5.0, 8), [0.0, 0.0]])
        E = sp.csr_matrix(Q @ np.diag(w) @ Q.T)
        pinv = _PseudoInverse(E, 1e-10)
        assert pinv.rank == 8
        b = rng.standard_normal(10)
        assert np.allclose(E @ (pinv.solve(b)), E @ (np.linalg.pinv(
            E.toarray(), rcond=1e-8) @ b), atol=1e-8)

    def test_sparse_strategy_on_nonsymmetric_solve(self, mesh20):
        form = convdiff_form(mesh20)
        rep = SchwarzSolver(mesh20, form, num_subdomains=6, nev=6,
                            coarse_strategy="sparse").solve(tol=1e-7)
        assert rep.converged

    def test_multilevel_strategy_on_nonsymmetric_solve(self, mesh20):
        form = convdiff_form(mesh20)
        rep = SchwarzSolver(mesh20, form, num_subdomains=8, nev=4,
                            krylov="fgmres",
                            coarse_strategy="multilevel").solve(tol=1e-7)
        assert rep.converged


# ----------------------------------------------------------------------
# Guards: energy_norm, solve_many
# ----------------------------------------------------------------------

class TestGuards:
    def test_energy_norm_raises_on_nonsymmetric(self):
        A = sp.csr_matrix(np.array([[2.0, 1.0], [0.0, 2.0]]))
        with pytest.raises(SymmetryError, match="symmetric"):
            energy_norm(A, np.array([1.0, 1.0]))

    def test_energy_norm_raises_on_negative_form(self):
        A = sp.csr_matrix(np.diag([-1.0, -1.0]))
        with pytest.raises(SymmetryError):
            energy_norm(A, np.array([1.0, 0.0]))

    def test_solve_many_auto_picks_gmres(self, convdiff_solver):
        sess = convdiff_solver.session()
        b = convdiff_solver.problem.rhs()
        B = np.column_stack([b, 0.7 * b])
        batch = sess.solve_many(B, tol=1e-7)
        assert batch.driver == "block-gmres"
        assert batch.converged

    def test_solve_many_rejects_explicit_block_cg(self, convdiff_solver):
        sess = convdiff_solver.session()
        b = convdiff_solver.problem.rhs()
        with pytest.raises(SymmetryError, match="nonsymmetric"):
            sess.solve_many(np.column_stack([b, b]), driver="block-cg")


# ----------------------------------------------------------------------
# Resilience on nonsymmetric solves
# ----------------------------------------------------------------------

class TestResilience:
    def test_kill_plus_degrade_on_convdiff(self, mesh20):
        plan = FaultPlan([FaultSpec("kill", "local_solve", rank=2,
                                    nth=4, persistent=True)])
        solver = SchwarzSolver(mesh20, convdiff_form(mesh20),
                               num_subdomains=6, nev=6,
                               faults=plan, recovery="degrade")
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            report = solver.solve(tol=1e-7, maxiter=400)
        assert report.converged
        assert report.resilience["mode"] == "degrade"
        assert sum(report.resilience["faults"].values()) >= 1

    def test_restart_recovery_on_convdiff(self, mesh20):
        plan = FaultPlan([FaultSpec("nan", "local_solve", rank=1, nth=3)])
        solver = SchwarzSolver(mesh20, convdiff_form(mesh20),
                               num_subdomains=6, nev=6,
                               faults=plan, recovery="restart")
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            report = solver.solve(tol=1e-7, maxiter=400)
        assert report.converged
        assert report.resilience["restarts"] >= 1
