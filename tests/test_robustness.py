"""Robustness tests: connectivity enforcement, carve pruning,
rank-deficient coarse operators, property-based exchange identities."""

import numpy as np
import pytest
import scipy.sparse as sp
from repro.core import CoarseOperator, DeflationSpace, compute_deflation
from repro.core.coarse import _PseudoInverse
from repro.mesh import carve, tripod_3d, unit_cube, unit_square
from repro.partition import enforce_connected, parts_connected, partition_mesh


class TestEnforceConnected:
    def _path(self, n):
        rows = np.arange(n - 1)
        g = sp.coo_matrix((np.ones(n - 1), (rows, rows + 1)), shape=(n, n))
        return (g + g.T).tocsr()

    def test_merges_stray_component(self):
        g = self._path(10)
        part = np.array([0, 0, 0, 1, 1, 1, 0, 0, 1, 1])
        fixed = enforce_connected(g, part)
        assert parts_connected(g, fixed)

    def test_noop_on_connected(self):
        g = self._path(8)
        part = np.array([0] * 4 + [1] * 4)
        assert np.array_equal(enforce_connected(g, part), part)

    @pytest.mark.parametrize("gen,k", [(lambda: unit_square(20), 24),
                                       (lambda: unit_cube(6), 16)])
    def test_mesh_partitions_connected(self, gen, k):
        m = gen()
        part = partition_mesh(m, k, seed=0)
        assert parts_connected(m.dual_graph, part)

    def test_all_parts_survive(self):
        m = unit_square(16)
        for k in (7, 13, 24):
            part = partition_mesh(m, k, seed=1)
            assert set(part) == set(range(k))


class TestCarvePruning:
    def test_tripod_single_component(self):
        from scipy.sparse.csgraph import connected_components
        m = tripod_3d(3)
        ncomp, _ = connected_components(m.dual_graph, directed=False)
        assert ncomp == 1

    def test_prune_false_keeps_strays(self):
        m = unit_square(6)

        def keep(c):
            # two diagonal blobs touching only at a corner vertex
            return ((c[:, 0] < 0.5) & (c[:, 1] < 0.5)) | \
                   ((c[:, 0] > 0.5) & (c[:, 1] > 0.5))

        from scipy.sparse.csgraph import connected_components
        raw = carve(m, keep, prune=False)
        nc_raw, _ = connected_components(raw.dual_graph, directed=False)
        pruned = carve(m, keep)
        nc_pr, _ = connected_components(pruned.dual_graph, directed=False)
        assert nc_raw == 2
        assert nc_pr == 1


class TestRankDeficientCoarse:
    def test_pseudo_inverse_fallback(self, diffusion_decomposition):
        """Duplicated deflation columns → singular E → the operator must
        detect it and still produce a usable correction."""
        dec = diffusion_decomposition
        Ws = []
        for s in dec.subdomains:
            W = compute_deflation(s, nev=2, seed=s.index).W
            Ws.append(np.column_stack([W, W[:, :1]]))     # duplicate!
        space = DeflationSpace(dec, Ws)
        op = CoarseOperator(space)
        assert op.rank_deficient
        # the correction still reproduces coarse-space vectors
        rng = np.random.default_rng(0)
        y = rng.standard_normal(space.m)
        Zy = space.explicit_z() @ y
        A = dec.problem.matrix()
        out = op.correction(A @ Zy)
        assert np.allclose(out, Zy, atol=1e-6 * max(abs(Zy).max(), 1e-30))

    def test_healthy_e_uses_factorization(self, diffusion_decomposition):
        dec = diffusion_decomposition
        Ws = [compute_deflation(s, nev=2, seed=s.index).W
              for s in dec.subdomains]
        op = CoarseOperator(DeflationSpace(dec, Ws))
        assert not op.rank_deficient

    def test_pseudo_inverse_solver(self):
        rng = np.random.default_rng(1)
        V = np.linalg.qr(rng.standard_normal((20, 20)))[0]
        w = np.concatenate([np.linspace(1, 5, 17), np.zeros(3)])
        E = sp.csr_matrix(V @ np.diag(w) @ V.T)
        pinv = _PseudoInverse(E, 1e-10)
        assert pinv.rank == 17
        b = V[:, 0] * 2.5                       # in range(E)
        x = pinv.solve(b)
        assert np.allclose(E @ x, b, atol=1e-9)


class TestExchangeProperties:
    def test_exchange_linear(self, diffusion_decomposition, rng):
        dec = diffusion_decomposition
        xs = [rng.standard_normal(s.size) for s in dec.subdomains]
        ys = [rng.standard_normal(s.size) for s in dec.subdomains]
        a, b = 2.0, -3.0
        lhs = dec.exchange_sum([a * x + b * y for x, y in zip(xs, ys)])
        ex_x = dec.exchange_sum(xs)
        ex_y = dec.exchange_sum(ys)
        for li, xi, yi in zip(lhs, ex_x, ex_y):
            assert np.allclose(li, a * xi + b * yi)

    def test_exchange_of_consistent_is_multiplicity(self,
                                                    diffusion_decomposition,
                                                    rng):
        """For consistent inputs x_i = R_i x, the exchange returns the
        multiplicity-weighted vector: Σ_j R_iR_jᵀ R_j x = R_i (Σ R_jᵀR_j) x."""
        dec = diffusion_decomposition
        x = rng.standard_normal(dec.problem.num_free)
        out = dec.exchange_sum(dec.restrict(x))
        mult = dec.multiplicity.astype(np.float64)
        for s, oi in zip(dec.subdomains, out):
            assert np.allclose(oi, (mult * x)[s.dofs])

    def test_combine_raw_adjoint_of_restrict(self, diffusion_decomposition,
                                             rng):
        """⟨Σ R_iᵀ u_i, v⟩ = Σ ⟨u_i, R_i v⟩."""
        dec = diffusion_decomposition
        us = [rng.standard_normal(s.size) for s in dec.subdomains]
        v = rng.standard_normal(dec.problem.num_free)
        lhs = dec.combine_raw(us) @ v
        rhs = sum(u @ vi for u, vi in zip(us, dec.restrict(v)))
        assert lhs == pytest.approx(rhs, rel=1e-12)
