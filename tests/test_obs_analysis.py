"""Tests for the trace-analytics layer (repro.obs.analysis) and the
OpenMetrics exposition (repro.obs.metrics)."""

import math

import numpy as np
import pytest

from repro.obs import (Recorder, analyze, comm_matrix,
                       convergence_forensics, critical_path,
                       critical_paths, fit_decay_rate, load_imbalance,
                       load_trace, snapshot, to_openmetrics,
                       validate_openmetrics, write_trace)
from repro.obs.analysis import stagnation_run
from repro.obs.export import TraceData
from repro.obs.recorder import EventRecord, SpanRecord


def span(name, start, end, index, parent=None, track="main"):
    return SpanRecord(name=name, track=track, start=start, end=end,
                      index=index, parent=parent)


@pytest.fixture
def nested_trace():
    """Hand-built tree with a known dominant chain.

    root(0..10) -> heavy(1..9) -> inner(2..5); heavy also has a lighter
    child light(6..8) the path must NOT descend into.  A second, shorter
    root(20..23) checks root selection.
    """
    return TraceData(spans=[
        span("root", 0.0, 10.0, 0),
        span("heavy", 1.0, 9.0, 1, parent=0),
        span("inner", 2.0, 5.0, 2, parent=1),
        span("light", 6.0, 8.0, 3, parent=1),
        span("other_root", 20.0, 23.0, 4),
    ])


class TestCriticalPath:
    def test_descends_into_largest_child(self, nested_trace):
        path = critical_path(nested_trace)
        assert [p.name for p in path] == ["root", "heavy", "inner"]
        assert [p.depth for p in path] == [0, 1, 2]

    def test_self_time_excludes_children(self, nested_trace):
        path = critical_path(nested_trace)
        by_name = {p.name: p for p in path}
        # root: 10s total, heavy covers 8 -> 2s self
        assert by_name["root"].self_seconds == pytest.approx(2.0)
        # heavy: 8s total, inner (3) + light (2) cover 5 -> 3s self
        assert by_name["heavy"].self_seconds == pytest.approx(3.0)
        # leaf: all self
        assert by_name["inner"].self_seconds == pytest.approx(3.0)

    def test_fractions_relative_to_root(self, nested_trace):
        path = critical_path(nested_trace)
        assert path[0].fraction == pytest.approx(1.0)
        assert path[1].fraction == pytest.approx(0.8)

    def test_named_root(self, nested_trace):
        path = critical_path(nested_trace, root="other_root")
        assert [p.name for p in path] == ["other_root"]

    def test_empty_trace(self):
        assert critical_path(TraceData()) == []

    def test_multi_root_timeline(self, nested_trace):
        # both roots appear, ordered by start time, each with depth 0
        path = critical_paths(nested_trace)
        roots = [p.name for p in path if p.depth == 0]
        assert roots == ["root", "other_root"]
        assert [p.name for p in path] == ["root", "heavy", "inner",
                                          "other_root"]


class TestLoadImbalance:
    def test_task_indexed_spans_group_by_index(self):
        # geneo[i] with durations 1, 1, 4 -> mean 2, max 4, ratio 2
        trace = TraceData(spans=[
            span("geneo[0]", 0.0, 1.0, 0),
            span("geneo[1]", 0.0, 1.0, 1),
            span("geneo[2]", 0.0, 4.0, 2),
        ])
        (st,) = load_imbalance(trace)
        assert st.name == "geneo"
        assert st.instances == 3
        assert st.mean == pytest.approx(2.0)
        assert st.max == pytest.approx(4.0)
        assert st.ratio == pytest.approx(2.0)
        assert st.argmax == "[2]"

    def test_plain_spans_group_by_track(self):
        trace = TraceData(spans=[
            span("apply", 0.0, 1.0, 0, track="rank0"),
            span("apply", 0.0, 3.0, 1, track="rank1"),
        ])
        (st,) = load_imbalance(trace)
        assert st.instances == 2
        assert st.argmax == "rank1"
        assert st.ratio == pytest.approx(1.5)

    def test_single_instance_phases_skipped(self):
        trace = TraceData(spans=[span("setup", 0.0, 1.0, 0)])
        assert load_imbalance(trace) == []

    def test_repeats_accumulate_per_instance(self):
        # two apply calls on the same track sum before comparing
        trace = TraceData(spans=[
            span("apply", 0.0, 1.0, 0, track="rank0"),
            span("apply", 2.0, 3.0, 1, track="rank0"),
            span("apply", 0.0, 2.0, 2, track="rank1"),
        ])
        (st,) = load_imbalance(trace)
        assert st.max == pytest.approx(2.0)
        assert st.ratio == pytest.approx(1.0)


class TestCommMatrix:
    def test_ring_exchange_from_meter_and_trace(self, tmp_path):
        # rank r sends one float64[4] array (32 byte payload) to
        # (r + 1) % n: the comm matrix must be the cyclic permutation,
        # both from the live meter and reconstructed from the trace file
        from repro.mpi.simmpi import run_spmd
        from repro.mpi.meter import Meter

        n = 4
        rec = Recorder()
        meter = Meter(n, recorder=rec)

        def ring(comm):
            payload = np.arange(4, dtype=np.float64)
            right = (comm.rank + 1) % comm.size
            left = (comm.rank - 1) % comm.size
            req = comm.isend(payload, right)
            got = comm.recv(left)
            req.wait()
            return got

        run_spmd(n, ring, meter=meter, recorder=rec)

        exact = comm_matrix(meter)
        expected = np.zeros((n, n))
        for r in range(n):
            expected[r, (r + 1) % n] = 1
        np.testing.assert_array_equal(exact.messages, expected)
        np.testing.assert_array_equal(exact.bytes, 32 * expected)
        assert sorted(exact.neighbors(0)) == [1, 3]

        # round-trip through a trace file: same matrix, no meter needed
        path = tmp_path / "ring.json"
        write_trace(rec, path)
        rebuilt = comm_matrix(load_trace(path))
        np.testing.assert_array_equal(rebuilt.messages, exact.messages)
        np.testing.assert_array_equal(rebuilt.bytes, exact.bytes)

    def test_empty_renders_placeholder(self):
        m = comm_matrix(TraceData())
        assert "no point-to-point" in m.render()

    def test_render_shows_totals(self):
        trace = TraceData(counters={
            "mpi.pair_msgs.0->1": 3, "mpi.pair_bytes.0->1": 96})
        m = comm_matrix(trace)
        text = m.render()
        assert "3 messages" in text
        assert "96 bytes" in text


class TestConvergenceForensics:
    def test_decay_rate_on_geometric_history(self):
        residuals = [1.0 * 0.5 ** k for k in range(10)]
        assert fit_decay_rate(residuals) == pytest.approx(0.5)

    def test_decay_rate_unfittable(self):
        assert math.isnan(fit_decay_rate([1.0]))
        assert math.isnan(fit_decay_rate([0.0, -1.0]))

    def test_stagnation_run_flat_history(self):
        assert stagnation_run([1.0] * 8) == 7
        assert stagnation_run([1.0 * 0.5 ** k for k in range(8)]) == 0

    def test_forensics_on_decaying_events(self):
        rec = Recorder()
        for k in range(12):
            rec.event("iteration", attrs={"k": k, "residual": 0.5 ** k})
        diag = convergence_forensics(rec)
        assert diag.iterations == 12
        assert diag.decay_rate == pytest.approx(0.5, rel=1e-6)
        assert diag.iterations_per_digit == pytest.approx(
            -1.0 / math.log10(0.5))
        assert not diag.stagnating
        assert not diag.orthogonality_loss

    def test_forensics_flags_stagnation(self):
        rec = Recorder()
        for k in range(15):
            rec.event("iteration", attrs={"k": k, "residual": 1.0})
        diag = convergence_forensics(rec)
        assert diag.stagnating
        assert diag.stagnation_window >= 10

    def test_forensics_counts_health_and_restarts(self):
        rec = Recorder()
        rec.event("iteration", attrs={"k": 0, "residual": 1.0})
        rec.event("iteration", attrs={"k": 1, "residual": 0.5})
        rec.event("health.orthogonality", attrs={"k": 1})
        rec.event("restart", attrs={"k": 1})
        rec.event("recovery.restart", attrs={})
        diag = convergence_forensics(rec)
        assert diag.health_events == {"orthogonality": 1}
        assert diag.orthogonality_loss
        assert diag.restarts == 1
        assert diag.recovery_restarts == 1


class TestAnalyzeAndReport:
    @pytest.fixture(scope="class")
    def report(self):
        from repro import SchwarzSolver
        from repro.fem.forms import DiffusionForm
        from repro.mesh import unit_square

        rec = Recorder()
        solver = SchwarzSolver(unit_square(12), DiffusionForm(degree=1),
                               num_subdomains=4, nev=2, recorder=rec)
        solver.solve(tol=1e-8)
        return analyze(rec)

    def test_real_solve_produces_all_sections(self, report):
        assert report.path, "critical path must be non-empty"
        names = [p.name for p in report.path if p.depth == 0]
        assert "setup" in names and "solution" in names
        assert any(st.name == "geneo" for st in report.imbalance)
        assert report.convergence.iterations > 0
        assert 0 < report.convergence.decay_rate < 1

    def test_render_contains_all_tables(self, report):
        text = report.render()
        for needle in ("critical path", "load imbalance", "convergence",
                       "run summary"):
            assert needle in text

    def test_markdown_renders(self, report):
        md = report.to_markdown()
        assert md.startswith("# repro run report")
        for needle in ("## Critical path", "## Load imbalance",
                       "## Communication", "## Convergence"):
            assert needle in md


class TestMetrics:
    @pytest.fixture
    def rec(self):
        rec = Recorder()
        rec.add("matvecs", 5)
        rec.add("mpi.pair_msgs.0->1", 3)
        rec.add("mpi.pair_bytes.0->1", 96)
        rec.gauge("coarse.dim", 32)
        with rec.span("apply"):
            pass
        rec.event("iteration", attrs={"k": 0, "residual": 1.0})
        return rec

    def test_snapshot_shape(self, rec):
        snap = snapshot(rec, extra={"run": "t"})
        assert snap["counters"]["matvecs"] == 5
        assert snap["gauges"]["coarse.dim"] == 32
        assert snap["spans"]["apply"]["count"] == 1
        assert snap["num_events"] == 1
        assert snap["run"] == "t"

    def test_openmetrics_valid_and_complete(self, rec):
        text = to_openmetrics(rec)
        validate_openmetrics(text)
        assert "repro_matvecs_total 5" in text
        assert ('repro_mpi_pair_msgs_total{dst="1",src="0"} 3'
                in text)
        assert "repro_coarse_dim 32" in text
        assert 'repro_span_calls_total{span="apply"} 1' in text
        assert text.rstrip().endswith("# EOF")

    def test_colliding_names_merged_with_label(self):
        rec = Recorder()
        rec.gauge("coarse.dim", 1)
        rec.gauge("coarse_dim", 2)
        text = to_openmetrics(rec)
        validate_openmetrics(text)
        assert 'repro_coarse_dim{name="coarse.dim"} 1' in text
        assert 'repro_coarse_dim{name="coarse_dim"} 2' in text

    def test_extra_labels_on_every_sample(self, rec):
        text = to_openmetrics(rec, labels={"run": "bench42"})
        validate_openmetrics(text)
        assert 'repro_matvecs_total{run="bench42"} 5' in text

    def test_validator_rejects_garbage(self):
        with pytest.raises(ValueError):
            validate_openmetrics("repro_x 1\n")  # no EOF
        with pytest.raises(ValueError):
            validate_openmetrics("!bad line\n# EOF\n")
        with pytest.raises(ValueError):
            validate_openmetrics(
                "# TYPE a gauge\na 1\n# TYPE a gauge\na 2\n# EOF\n")

    def test_meter_fault_counters_exported(self, rec):
        # per-kind injected-fault counts + retry/repair tallies ride
        # along when the run's meter is passed in
        from repro.mpi.meter import Meter
        from repro.obs import meter_counters
        meter = Meter(4)
        meter.on_fault(1, "drop", "send")
        meter.on_fault(1, "drop", "send")
        meter.on_fault(2, "kill", "iteration")
        meter.on_retry(1)
        meter.on_retry_outcome(1, recovered=True)
        meter.on_rank_death(2)
        meter.on_repair(1)

        tallies = meter_counters(meter)
        assert tallies["mpi.fault.drop"] == 2
        assert tallies["mpi.fault.kill"] == 1
        assert tallies["mpi.retry_attempts"] == 1
        assert tallies["mpi.retry_recovered"] == 1
        assert "mpi.retry_exhausted" not in tallies   # zero -> omitted
        assert tallies["mpi.rank_deaths"] == 1
        assert tallies["mpi.repairs"] == 1
        assert tallies["mpi.ranks_replaced"] == 1

        snap = snapshot(rec, meter=meter)
        assert snap["counters"]["mpi.fault.drop"] == 2
        assert snap["counters"]["matvecs"] == 5       # merged, not replaced

        text = to_openmetrics(rec, meter=meter)
        validate_openmetrics(text)
        assert "repro_mpi_fault_drop_total 2" in text
        assert "repro_mpi_fault_kill_total 1" in text
        assert "repro_mpi_rank_deaths_total 1" in text
        assert "repro_mpi_repairs_total 1" in text

    def test_faultfree_meter_adds_nothing(self, rec):
        from repro.mpi.meter import Meter
        from repro.obs import meter_counters
        meter = Meter(2)
        assert meter_counters(meter) == {}
        assert snapshot(rec, meter=meter)["counters"] == \
            snapshot(rec)["counters"]
