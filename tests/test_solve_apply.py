"""The fast deflated apply path: cached A·Z blocks, parallel RAS
application, vectorized Z products and the per-phase solve profiler."""

import numpy as np
import pytest

from repro.common.errors import KrylovError
from repro.core import (
    CoarseOperator,
    DeflationSpace,
    OneLevelRAS,
    TwoLevelADEF1,
    TwoLevelBNN,
    compute_deflation,
)
from repro.krylov import SolveProfiler, cg, fgmres, gmres, p1_gmres
from repro.krylov.gmres import _as_operator
from repro.parallel import ParallelConfig


@pytest.fixture(scope="module")
def diffusion_stack(diffusion_decomposition):
    dec = diffusion_decomposition
    ras = OneLevelRAS(dec)
    Ws = [compute_deflation(s, nev=4, seed=s.index).W
          for s in dec.subdomains]
    space = DeflationSpace(dec, Ws)
    return dec, ras, space, CoarseOperator(space)


@pytest.fixture(scope="module")
def elasticity_stack(elasticity_decomposition):
    dec = elasticity_decomposition
    ras = OneLevelRAS(dec)
    Ws = [compute_deflation(s, nev=4, seed=s.index).W
          for s in dec.subdomains]
    space = DeflationSpace(dec, Ws)
    return dec, ras, space, CoarseOperator(space)


STACKS = ["diffusion_stack", "elasticity_stack"]


class TestCachedAZ:
    """T_i = A_i W_i cached at setup ≡ the explicit A·Z product."""

    @pytest.mark.parametrize("stack_name", STACKS)
    def test_az_matches_explicit(self, stack_name, request, rng):
        dec, _, space, coarse = request.getfixturevalue(stack_name)
        A = dec.problem.matrix()
        y = rng.standard_normal(space.m)
        ref = A @ (space.Z @ y)
        got = coarse.az_dot(y)
        assert np.linalg.norm(got - ref) <= 1e-14 * np.linalg.norm(ref)

    @pytest.mark.parametrize("stack_name", STACKS)
    def test_az_blocks_matches_explicit(self, stack_name, request, rng):
        """The distributed form (per-subdomain gemvs + overlap sum)."""
        dec, _, space, coarse = request.getfixturevalue(stack_name)
        A = dec.problem.matrix()
        y = rng.standard_normal(space.m)
        ref = A @ (space.Z @ y)
        got = coarse.az_dot_blocks(y)
        assert np.linalg.norm(got - ref) <= 1e-13 * np.linalg.norm(ref)

    def test_az_sparsity_matches_z(self, diffusion_stack):
        """A·Z inherits the block sparsity of Z (fig. 3): block column i
        lives on subdomain i's rows."""
        _, _, space, coarse = diffusion_stack
        assert coarse.AZ.shape == space.Z.shape
        # column supports stay inside the Z column supports
        Zb = space.Z.tocsc()
        AZb = coarse.AZ.tocsc()
        for j in range(space.m):
            zi = Zb.indices[Zb.indptr[j]:Zb.indptr[j + 1]]
            ai = AZb.indices[AZb.indptr[j]:AZb.indptr[j + 1]]
            assert set(ai) <= set(zi)


class TestFastADEF1:
    @pytest.mark.parametrize("stack_name", STACKS)
    def test_apply_matches_reference(self, stack_name, request, rng):
        """Fast path ≤ 1e-14 relative to the pre-cache reference path."""
        dec, ras, space, coarse = request.getfixturevalue(stack_name)
        pre = TwoLevelADEF1(ras, coarse)
        for trial in range(3):
            u = rng.standard_normal(dec.problem.num_free)
            fast = pre.apply(u)
            ref = pre.apply_reference(u)
            # intermediates are O(‖u‖), so scale the bound by the larger
            # of input and output norms (the output can be much smaller)
            scale = max(np.linalg.norm(ref), np.linalg.norm(u))
            assert np.linalg.norm(fast - ref) <= 1e-14 * scale

    def test_zero_global_spmvs(self, diffusion_stack, rng):
        """The A Z E⁻¹ Zᵀ u term must not perform any global SpMV."""
        dec, ras, space, coarse = diffusion_stack
        pre = TwoLevelADEF1(ras, coarse)
        u = rng.standard_normal(dec.problem.num_free)
        before = dec.matvecs
        pre.apply(u)
        assert dec.matvecs == before

    def test_reference_pays_one_spmv(self, diffusion_stack, rng):
        dec, ras, space, coarse = diffusion_stack
        pre = TwoLevelADEF1(ras, coarse)
        u = rng.standard_normal(dec.problem.num_free)
        before = dec.matvecs
        pre.apply_reference(u)
        assert dec.matvecs == before + 1

    def test_one_coarse_solve(self, diffusion_stack, rng):
        dec, ras, space, coarse = diffusion_stack
        pre = TwoLevelADEF1(ras, coarse)
        before = coarse.solves
        pre.apply(rng.standard_normal(dec.problem.num_free))
        assert coarse.solves - before == 1

    def test_bnn_first_factor_cached(self, diffusion_stack, rng):
        """BNN's (I − AQ) factor also rides the cached A·Z: only the
        (I − QA) factor still needs a global SpMV."""
        dec, ras, space, coarse = diffusion_stack
        pre = TwoLevelBNN(ras, coarse)
        u = rng.standard_normal(dec.problem.num_free)
        before = dec.matvecs
        pre.apply(u)
        assert dec.matvecs == before + 1


class TestVectorizedZ:
    @pytest.mark.parametrize("stack_name", STACKS)
    def test_zt_dot_matches_blocks(self, stack_name, request, rng):
        dec, _, space, _ = request.getfixturevalue(stack_name)
        u = rng.standard_normal(dec.problem.num_free)
        fast = space.zt_dot(u)
        ref = space.zt_dot_blocks(u)
        assert np.linalg.norm(fast - ref) \
            <= 1e-14 * max(np.linalg.norm(ref), 1e-300)

    @pytest.mark.parametrize("stack_name", STACKS)
    def test_z_dot_matches_blocks(self, stack_name, request, rng):
        _, _, space, _ = request.getfixturevalue(stack_name)
        y = rng.standard_normal(space.m)
        fast = space.z_dot(y)
        ref = space.z_dot_blocks(y)
        assert np.linalg.norm(fast - ref) \
            <= 1e-13 * max(np.linalg.norm(ref), 1e-300)

    def test_explicit_z_is_cached(self, diffusion_stack):
        _, _, space, _ = diffusion_stack
        assert space.explicit_z() is space.Z
        assert space.explicit_z() is space.explicit_z()


class TestParallelRAS:
    def test_apply_bitwise_identical(self, diffusion_stack, rng):
        dec, ras_serial, *_ = diffusion_stack
        ras_par = OneLevelRAS(dec,
                              parallel=ParallelConfig("threads", workers=4))
        for _ in range(3):
            r = rng.standard_normal(dec.problem.num_free)
            assert np.array_equal(ras_serial.apply(r), ras_par.apply(r))

    def test_apply_block_bitwise_identical(self, diffusion_stack, rng):
        dec, ras_serial, *_ = diffusion_stack
        ras_par = OneLevelRAS(dec,
                              parallel=ParallelConfig("threads", workers=4))
        R = rng.standard_normal((dec.problem.num_free, 5))
        assert np.array_equal(ras_serial.apply_block(R),
                              ras_par.apply_block(R))

    def test_apply_block_accumulation_unchanged(self, diffusion_stack, rng):
        """Micro-assert for the fancy-index accumulation: identical to
        the np.add.at reference (subdomain dofs are unique)."""
        dec, ras, *_ = diffusion_stack
        R = rng.standard_normal((dec.problem.num_free, 3))
        got = ras.apply_block(R)
        ref = np.zeros_like(got)
        for f, s in zip(ras.factorizations, dec.subdomains):
            sols = f.solve(R[s.dofs, :])
            np.add.at(ref, s.dofs, s.d[:, None] * sols)
        assert np.array_equal(got, ref)

    def test_apply_block_matches_columnwise(self, diffusion_stack, rng):
        dec, ras, *_ = diffusion_stack
        R = rng.standard_normal((dec.problem.num_free, 3))
        block = ras.apply_block(R)
        for k in range(R.shape[1]):
            assert np.allclose(block[:, k], ras.apply(R[:, k]),
                               rtol=0, atol=1e-13)


class TestAsOperator:
    def test_matrix_shape_validated(self):
        import scipy.sparse as sp
        bad = sp.eye(5, format="csr")
        with pytest.raises(KrylovError, match=r"M has shape \(5, 5\)"):
            _as_operator(bad, 7, "M")

    def test_dense_shape_validated(self):
        with pytest.raises(KrylovError, match="A has shape"):
            _as_operator(np.eye(3), 4, "A")

    def test_gmres_rejects_mismatched_matrix(self):
        import scipy.sparse as sp
        A = sp.eye(6, format="csr")
        with pytest.raises(KrylovError, match="A has shape"):
            gmres(A, np.ones(4))

    def test_valid_operands_pass(self):
        A = np.diag([2.0, 3.0])
        mul = _as_operator(A, 2, "A")
        assert np.allclose(mul(np.ones(2)), [2.0, 3.0])
        assert _as_operator(None, 2, "M")(np.ones(2)) is not None


class TestSolveProfiler:
    @pytest.mark.parametrize("method", [gmres, fgmres, p1_gmres])
    def test_gmres_family_profiles(self, method, rng):
        A = np.diag(rng.uniform(1.0, 2.0, 40))
        b = rng.standard_normal(40)
        res = method(A, b, tol=1e-10, restart=10, maxiter=100)
        assert "matvec" in res.profile
        assert "apply" in res.profile
        assert "orthogonalization" in res.profile
        assert all(v >= 0 for v in res.profile.values())

    def test_cg_profiles(self, rng):
        A = np.diag(rng.uniform(1.0, 2.0, 40))
        b = rng.standard_normal(40)
        res = cg(A, b, tol=1e-10, maxiter=100)
        assert "matvec" in res.profile and "apply" in res.profile

    def test_shared_profiler_sees_coarse_solve(self, diffusion_stack, rng):
        dec, ras, space, coarse = diffusion_stack
        pre = TwoLevelADEF1(ras, coarse)
        prof = SolveProfiler()
        coarse.profiler = prof
        try:
            A = dec.problem.matrix()
            b = dec.problem.rhs()
            res = gmres(A, b, M=pre.apply, tol=1e-8, restart=40,
                        maxiter=100, profiler=prof)
        finally:
            coarse.profiler = None
        assert res.converged
        assert "coarse_solve" in res.profile
        assert prof.calls["coarse_solve"] >= res.iterations
        # coarse solves happen inside the preconditioner application
        assert res.profile["coarse_solve"] <= res.profile["apply"] + 1e-9

    def test_schwarz_solver_surfaces_profile(self):
        from repro import SchwarzSolver
        from repro.fem import channels_and_inclusions
        from repro.fem.forms import DiffusionForm
        from repro.mesh import unit_square
        mesh = unit_square(12)
        form = DiffusionForm(degree=2,
                             kappa=channels_and_inclusions(mesh, seed=3))
        solver = SchwarzSolver(mesh, form, num_subdomains=4, nev=4)
        report = solver.solve(tol=1e-8)
        assert report.converged
        prof = report.krylov.profile
        for key in ("apply", "coarse_solve", "matvec", "orthogonalization"):
            assert key in prof, f"missing profiler phase {key}"


class TestEndToEnd:
    def test_gmres_converges_same_with_fast_path(self, diffusion_stack):
        """Iteration counts with the cached path match the reference
        path through an entire GMRES solve."""
        dec, ras, space, coarse = diffusion_stack
        pre = TwoLevelADEF1(ras, coarse)
        A = dec.problem.matrix()
        b = dec.problem.rhs()
        fast = gmres(A, b, M=pre.apply, tol=1e-8, restart=60, maxiter=200)
        ref = gmres(A, b, M=pre.apply_reference, tol=1e-8, restart=60,
                    maxiter=200)
        assert fast.converged and ref.converged
        assert fast.iterations == ref.iterations
        assert np.linalg.norm(fast.x - ref.x) \
            <= 1e-8 * max(np.linalg.norm(ref.x), 1e-300)
