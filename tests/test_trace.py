"""Tests for the SPMD execution tracer."""

import time

import numpy as np
import pytest

from repro.mpi import Meter, Tracer
from repro.mpi.trace import Span


class TestTracer:
    def test_records_spans(self):
        tr = Tracer(2)
        with tr.span(0, "work"):
            time.sleep(0.002)
        with tr.span(1, "other"):
            pass
        assert len(tr.spans[0]) == 1
        assert tr.spans[0][0].label == "work"
        assert tr.spans[0][0].duration >= 0.002

    def test_totals_accumulate(self):
        tr = Tracer(1)
        for _ in range(3):
            with tr.span(0, "a"):
                time.sleep(0.001)
        assert tr.totals(0)["a"] >= 0.003

    def test_summary_max_over_ranks(self):
        tr = Tracer(2)
        tr.spans[0].append(Span("a", 0.0, 1.0))
        tr.spans[1].append(Span("a", 0.0, 3.0))
        assert tr.summary()["a"] == pytest.approx(3.0)

    def test_gantt_renders(self):
        tr = Tracer(3)
        tr.spans[0].append(Span("compute", 0.0, 0.5))
        tr.spans[1].append(Span("exchange", 0.3, 0.9))
        out = tr.gantt(width=40)
        assert "rank   0" in out and "rank   2" in out
        assert "compute" in out and "exchange" in out

    def test_gantt_empty(self):
        assert "(no spans" in Tracer(2).gantt()

    def test_gantt_caps_ranks(self):
        tr = Tracer(20)
        for r in range(20):
            tr.spans[r].append(Span("x", 0, 1))
        out = tr.gantt(max_ranks=4)
        assert "more ranks" in out

    def test_exception_still_closes_span(self):
        tr = Tracer(1)
        with pytest.raises(ValueError):
            with tr.span(0, "boom"):
                raise ValueError()
        assert len(tr.spans[0]) == 1


class TestGanttEdgeCases:
    def test_empty_rows_still_render(self):
        """Ranks without spans get an (empty) row, not an exception."""
        tr = Tracer(3)
        tr.spans[1].append(Span("mid", 0.0, 1.0))
        out = tr.gantt(width=30)
        lines = out.splitlines()
        assert any(ln.startswith("rank   0") for ln in lines)
        assert any(ln.startswith("rank   2") for ln in lines)
        row0 = next(ln for ln in lines if ln.startswith("rank   0"))
        assert set(row0.split("|")[1]) <= {" "}

    def test_zero_duration_span(self):
        """A zero-length span paints at least one cell and the horizon
        stays positive (no division by zero)."""
        tr = Tracer(1)
        tr.spans[0].append(Span("instant", 0.5, 0.5))
        out = tr.gantt(width=30)
        assert "[#] instant" in out
        row = next(ln for ln in out.splitlines()
                   if ln.startswith("rank   0"))
        assert row.count("#") == 1

    def test_truncation_line_counts_hidden_ranks(self):
        tr = Tracer(20)
        for r in range(20):
            tr.spans[r].append(Span("x", 0, 1))
        out = tr.gantt(max_ranks=16)
        assert "... (4 more ranks)" in out
        assert "rank  15" in out and "rank  16" not in out

    def test_glyph_reuse_past_ten_labels(self):
        """The glyph alphabet has 10 symbols; label 11 wraps around to
        the first glyph rather than failing."""
        tr = Tracer(1)
        for i in range(12):
            tr.spans[0].append(Span(f"lab{i}", float(i), float(i) + 0.5))
        out = tr.gantt(width=60)
        assert "[#] lab0" in out and "[#] lab10" in out
        assert "[*] lab1" in out and "[*] lab11" in out

    def test_recorder_mirroring(self):
        """A tracer built with a Recorder forwards spans onto the shared
        timeline under the rank's track."""
        from repro.obs import Recorder
        rec = Recorder()
        tr = Tracer(2, recorder=rec)
        with tr.span(1, "exchange"):
            pass
        assert len(tr.spans[1]) == 1
        mirrored = rec.find("exchange")
        assert len(mirrored) == 1
        assert mirrored[0].track == "rank1"


class TestTracerIntegration:
    def test_spmd_solve_records_phases(self):
        from repro import SchwarzSolver
        from repro.core.spmd import solve_spmd
        from repro.fem.forms import DiffusionForm
        from repro.mesh import unit_square

        mesh = unit_square(12)
        s = SchwarzSolver(mesh, DiffusionForm(degree=2),
                          num_subdomains=4, nev=3)
        meter = Meter(4)
        meter.tracer = Tracer(4)
        b = s.problem.rhs()
        solve_spmd(s.decomposition, s.deflation, b, num_masters=2,
                   tol=1e-6, maxiter=60, meter=meter)
        summ = meter.tracer.summary()
        assert "matvec" in summ
        assert "local solve" in summ
        assert "coarse solve" in summ      # recorded on the masters
        # only masters solve the coarse system
        solvers = [r for r in range(4)
                   if "coarse solve" in meter.tracer.totals(r)]
        assert len(solvers) == 2
