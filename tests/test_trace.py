"""Tests for the SPMD execution tracer."""

import time

import numpy as np
import pytest

from repro.mpi import Meter, Tracer
from repro.mpi.trace import Span


class TestTracer:
    def test_records_spans(self):
        tr = Tracer(2)
        with tr.span(0, "work"):
            time.sleep(0.002)
        with tr.span(1, "other"):
            pass
        assert len(tr.spans[0]) == 1
        assert tr.spans[0][0].label == "work"
        assert tr.spans[0][0].duration >= 0.002

    def test_totals_accumulate(self):
        tr = Tracer(1)
        for _ in range(3):
            with tr.span(0, "a"):
                time.sleep(0.001)
        assert tr.totals(0)["a"] >= 0.003

    def test_summary_max_over_ranks(self):
        tr = Tracer(2)
        tr.spans[0].append(Span("a", 0.0, 1.0))
        tr.spans[1].append(Span("a", 0.0, 3.0))
        assert tr.summary()["a"] == pytest.approx(3.0)

    def test_gantt_renders(self):
        tr = Tracer(3)
        tr.spans[0].append(Span("compute", 0.0, 0.5))
        tr.spans[1].append(Span("exchange", 0.3, 0.9))
        out = tr.gantt(width=40)
        assert "rank   0" in out and "rank   2" in out
        assert "compute" in out and "exchange" in out

    def test_gantt_empty(self):
        assert "(no spans" in Tracer(2).gantt()

    def test_gantt_caps_ranks(self):
        tr = Tracer(20)
        for r in range(20):
            tr.spans[r].append(Span("x", 0, 1))
        out = tr.gantt(max_ranks=4)
        assert "more ranks" in out

    def test_exception_still_closes_span(self):
        tr = Tracer(1)
        with pytest.raises(ValueError):
            with tr.span(0, "boom"):
                raise ValueError()
        assert len(tr.spans[0]) == 1


class TestTracerIntegration:
    def test_spmd_solve_records_phases(self):
        from repro import SchwarzSolver
        from repro.core.spmd import solve_spmd
        from repro.fem.forms import DiffusionForm
        from repro.mesh import unit_square

        mesh = unit_square(12)
        s = SchwarzSolver(mesh, DiffusionForm(degree=2),
                          num_subdomains=4, nev=3)
        meter = Meter(4)
        meter.tracer = Tracer(4)
        b = s.problem.rhs()
        solve_spmd(s.decomposition, s.deflation, b, num_masters=2,
                   tol=1e-6, maxiter=60, meter=meter)
        summ = meter.tracer.summary()
        assert "matvec" in summ
        assert "local solve" in summ
        assert "coarse solve" in summ      # recorded on the masters
        # only masters solve the coarse system
        solvers = [r for r in range(4)
                   if "coarse solve" in meter.tracer.totals(r)]
        assert len(solvers) == 2
