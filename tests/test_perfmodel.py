"""Tests for the machine model, scaling rows and extrapolation."""

import numpy as np
import pytest

from repro.mpi.meter import Meter, RankStats
from repro.perfmodel import (
    CURIE,
    MachineModel,
    PowerLaw,
    ScalingRow,
    StrongScalingModel,
    fit_power_law,
    speedup,
    weak_efficiency,
)


class TestMachineModel:
    def test_p2p_components(self):
        m = MachineModel(latency=1e-6, inv_bandwidth=1e-9)
        assert m.p2p(0, messages=3) == pytest.approx(3e-6)
        assert m.p2p(1e9, messages=0) == pytest.approx(1.0)

    def test_log_collectives_scale_slowly(self):
        m = MachineModel()
        t64 = m.collective("allreduce", 64, 64)
        t4096 = m.collective("allreduce", 64, 4096)
        assert t4096 / t64 == pytest.approx(2.0, rel=0.01)   # log ratio

    def test_linear_collectives_scale_linearly(self):
        m = MachineModel()
        t64 = m.collective("gatherv", 64, 64)
        t4096 = m.collective("gatherv", 64, 4096)
        assert t4096 / t64 > 30

    def test_single_rank_free(self):
        assert MachineModel().collective("allreduce", 100, 1) == 0.0

    def test_compute(self):
        m = MachineModel(flops=1e9)
        assert m.compute(2e9) == pytest.approx(2.0)

    def test_model_meter_uses_max_rank(self):
        meter = Meter(2)
        meter.on_send(0, 1000)
        meter.on_send(0, 1000)
        t = CURIE.model_meter(meter, nranks=2)
        assert t > 0
        # rank 1 sent nothing; critical path = rank 0
        assert t == CURIE.model_rank_comm(meter.stats(0))


class TestScalingRows:
    def _rows(self):
        return [ScalingRow(4, 8.0, 8.0, 4.0, 10, 1 << 20),
                ScalingRow(8, 4.0, 4.0, 2.0, 11, 1 << 20),
                ScalingRow(16, 2.0, 2.0, 1.0, 12, 1 << 20)]

    def test_total(self):
        r = ScalingRow(4, 1.0, 2.0, 3.0, 9, 100)
        assert r.total == 6.0

    def test_speedup_linear(self):
        s = speedup(self._rows())
        assert np.allclose(s, [1.0, 2.0, 4.0])

    def test_weak_efficiency_perfect(self):
        rows = [ScalingRow(4, 1, 1, 1, 10, 4000),
                ScalingRow(8, 1, 1, 1, 10, 8000)]
        assert weak_efficiency(rows)[1] == pytest.approx(1.0)

    def test_weak_efficiency_degraded(self):
        rows = [ScalingRow(4, 1, 1, 1, 10, 4000),
                ScalingRow(8, 2, 1, 1, 10, 8000)]
        assert weak_efficiency(rows)[1] < 1.0


class TestPowerLaw:
    def test_exact_fit(self):
        n = np.array([100, 200, 400, 800])
        law = fit_power_law(n, 3e-6 * n ** 1.5)
        assert law.b == pytest.approx(1.5, abs=1e-6)
        assert law.a == pytest.approx(3e-6, rel=1e-6)
        assert law(1600) == pytest.approx(3e-6 * 1600 ** 1.5, rel=1e-6)

    def test_single_point(self):
        law = fit_power_law([100], [1.0])
        assert law.b == 1.0

    def test_strong_scaling_model_predicts_decreasing_local(self):
        rows = [ScalingRow(4, 8.0, 6.0, 1.0, 10, 1 << 16),
                ScalingRow(8, 3.0, 2.5, 0.6, 10, 1 << 16),
                ScalingRow(16, 1.2, 1.0, 0.4, 11, 1 << 16)]
        model = StrongScalingModel.fit(rows, nu=10)
        assert model.factorization.b > 1.0      # superlinear local cost
        big = model.predict(1024)
        small = model.predict(2048)
        assert small.factorization < big.factorization
        assert small.N == 2048
