"""Tests for the decomposition report and the MMS convergence tool."""

import numpy as np
import pytest

from repro.common.errors import FEMError
from repro.dd import decomposition_report
from repro.fem import ConvergenceStudy, convergence_study
from repro.mesh import refine_uniform, unit_square


class TestDecompositionReport:
    def test_basic_quantities(self, diffusion_decomposition):
        rep = decomposition_report(diffusion_decomposition)
        dec = diffusion_decomposition
        assert rep.num_subdomains == dec.num_subdomains
        assert rep.delta == dec.delta
        assert rep.n_free == dec.problem.num_free
        assert rep.sizes.sum() >= rep.n_free       # overlaps duplicate
        assert rep.max_multiplicity >= 2
        assert 0 < rep.mean_overlap_fraction <= 1

    def test_core_plus_overlap_is_size(self, diffusion_decomposition):
        rep = decomposition_report(diffusion_decomposition)
        overlap_counts = (rep.overlap_fractions * rep.sizes).round()
        assert np.allclose(rep.core_sizes + overlap_counts, rep.sizes)

    def test_render_contains_rows(self, diffusion_decomposition):
        out = decomposition_report(diffusion_decomposition).render()
        assert "subdomains N" in out
        assert "overlap fraction" in out

    def test_cli_decomposition_flag(self, capsys):
        from repro.cli import main
        rc = main(["info", "--problem", "diffusion2d", "--n", "10",
                   "-N", "2", "--decomposition"])
        assert rc == 0
        assert "decomposition report" in capsys.readouterr().out


class TestConvergenceStudy:
    @pytest.fixture(scope="class")
    def meshes(self):
        m0 = unit_square(4)
        return [m0, refine_uniform(m0, 1), refine_uniform(m0, 2)]

    @staticmethod
    def exact(x):
        return np.sin(np.pi * x[:, 0]) * np.cos(np.pi * x[:, 1])

    @staticmethod
    def rhs(x):
        return 2 * np.pi ** 2 * TestConvergenceStudy.exact(x)

    @pytest.mark.parametrize("k", [1, 2])
    def test_optimal_rates(self, meshes, k):
        st = convergence_study(meshes, k, self.exact, self.rhs)
        assert st.is_optimal()
        assert st.errors[-1] < st.errors[0]

    def test_with_coefficient(self, meshes):
        """Manufactured solution with κ = 2: rhs doubles."""
        st = convergence_study(meshes, 1, self.exact,
                               lambda x: 2 * self.rhs(x), kappa=2.0)
        assert st.is_optimal()

    def test_render(self, meshes):
        st = convergence_study(meshes[:2], 1, self.exact, self.rhs)
        out = st.render()
        assert "L2 error" in out and "rate" in out

    def test_needs_two_meshes(self, meshes):
        with pytest.raises(FEMError):
            convergence_study(meshes[:1], 1, self.exact, self.rhs)
