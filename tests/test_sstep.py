"""Tests for s-step (communication-avoiding) GMRES."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.common.errors import KrylovError
from repro.fem import FunctionSpace, assemble_load, assemble_stiffness, restrict_to_free
from repro.krylov import gmres, s_step_gmres
from repro.mesh import unit_square


@pytest.fixture(scope="module")
def system():
    m = unit_square(10)
    V = FunctionSpace(m, 2)
    A = assemble_stiffness(V)
    b = assemble_load(V, 1.0)
    Aff, bf, _ = restrict_to_free(A, b, V.boundary_dofs())
    import scipy.sparse.linalg as spla
    return Aff.tocsr(), bf, spla.spsolve(Aff.tocsc(), bf)


class TestSStepGMRES:
    @pytest.mark.parametrize("s", [2, 4, 8])
    def test_solves(self, system, s):
        A, b, xref = system
        r = s_step_gmres(A, b, s=s, tol=1e-9, maxiter=5000)
        assert r.converged
        assert np.linalg.norm(r.x - xref) <= 1e-6 * np.linalg.norm(xref)

    def test_matches_gmres_per_cycle(self, system):
        """One s-step cycle spans the same Krylov space as GMRES(s):
        total iteration counts agree within a few percent."""
        A, b, _ = system
        s = 6
        r1 = gmres(A, b, tol=1e-8, restart=s, maxiter=4000)
        r2 = s_step_gmres(A, b, s=s, tol=1e-8, maxiter=4000)
        assert abs(r1.iterations - r2.iterations) <= \
            max(6, 0.15 * r1.iterations)

    def test_far_fewer_syncs(self, system):
        A, b, _ = system
        s = 6
        r1 = gmres(A, b, tol=1e-8, restart=s, maxiter=4000)
        r2 = s_step_gmres(A, b, s=s, tol=1e-8, maxiter=4000)
        assert r2.global_syncs < r1.global_syncs / 3

    def test_preconditioned(self, system):
        A, b, xref = system
        M = sp.diags(1.0 / A.diagonal())
        r = s_step_gmres(A, b, M=M, s=6, tol=1e-8, maxiter=4000)
        assert r.converged
        assert np.linalg.norm(r.x - xref) <= 1e-5 * np.linalg.norm(xref)

    def test_two_level_preconditioner(self):
        """s-step + the A-DEF1 preconditioner: converges in ~1-2 cycles."""
        from repro import SchwarzSolver
        from repro.fem import channels_and_inclusions
        from repro.fem.forms import DiffusionForm
        mesh = unit_square(20)
        solver = SchwarzSolver(
            mesh, DiffusionForm(degree=2,
                                kappa=channels_and_inclusions(mesh,
                                                              seed=3)),
            num_subdomains=6, nev=6)
        A = solver.problem.matrix()
        b = solver.problem.rhs()
        r = s_step_gmres(A, b, M=solver.preconditioner.apply, s=8,
                         tol=1e-8, maxiter=200)
        assert r.converged
        assert r.iterations <= 40

    def test_zero_rhs(self, system):
        A, _, _ = system
        assert s_step_gmres(A, np.zeros(A.shape[0])).iterations == 0

    def test_invalid_s(self, system):
        A, b, _ = system
        with pytest.raises(KrylovError):
            s_step_gmres(A, b, s=0)

    def test_maxiter_flag(self, system):
        A, b, _ = system
        r = s_step_gmres(A, b, s=4, tol=1e-14, maxiter=8)
        assert not r.converged
