"""Parallel setup engine: determinism + blocked linear-algebra kernels.

The paper's headline claim is that the two-level Schwarz setup is
embarrassingly parallel; the engine in :mod:`repro.parallel` exploits
that, and these tests pin down its contract:

* the ``threads`` executor produces *bitwise identical* deflation bases,
  coarse operators and Krylov iteration counts to ``serial`` (diffusion
  and elasticity);
* every :class:`~repro.solvers.local.Factorization` backend solves a
  column block exactly like a per-column loop (the blocked kernels rely
  on this);
* :meth:`OneLevelRAS.apply_block` matches per-vector ``apply``;
* degenerate-direction restarts in ``_m_orthonormalize`` come from the
  caller's rng, not the column index.
"""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro import ParallelConfig, SchwarzSolver
from repro.common.errors import ReproError
from repro.core.ras import OneLevelASM, OneLevelRAS
from repro.eigen import subspace_iteration
from repro.eigen.lanczos import _m_orthonormalize
from repro.fem import channels_and_inclusions, layered_elasticity
from repro.fem.forms import DiffusionForm, ElasticityForm
from repro.mesh import rectangle, unit_square
from repro.parallel import parallel_map, resolve_parallel, timed_map
from repro.solvers import BACKENDS, factorize

THREADS = ParallelConfig("threads", workers=4)


# ----------------------------------------------------------------------
# Executor unit tests
# ----------------------------------------------------------------------

class TestExecutor:
    def test_parallel_map_preserves_order(self):
        out = parallel_map(lambda x: x * x, range(20), THREADS)
        assert out == [x * x for x in range(20)]

    def test_timed_map_aligned(self):
        res, times = timed_map(lambda x: -x, [3, 1, 2], THREADS)
        assert res == [-3, -1, -2]
        assert len(times) == 3 and all(t >= 0 for t in times)

    def test_resolve(self):
        assert resolve_parallel(None).backend == "serial"
        assert resolve_parallel("threads").backend == "threads"
        cfg = ParallelConfig("threads", workers=3)
        assert resolve_parallel(cfg) is cfg
        assert cfg.num_workers == 3
        assert ParallelConfig("serial").num_workers == 1

    def test_invalid_config(self):
        with pytest.raises(ReproError):
            ParallelConfig("mpi")
        with pytest.raises(ReproError):
            ParallelConfig("threads", workers=0)
        with pytest.raises(ReproError):
            resolve_parallel(3.14)


# ----------------------------------------------------------------------
# Bitwise determinism of the full setup pipeline
# ----------------------------------------------------------------------

def _diffusion_solver(parallel):
    mesh = unit_square(12)
    kappa = channels_and_inclusions(mesh, seed=3)
    return SchwarzSolver(mesh, DiffusionForm(degree=2, kappa=kappa),
                         num_subdomains=6, delta=1, nev=4, seed=0,
                         partition_method="rcb", parallel=parallel)


def _elasticity_solver(parallel):
    mesh = rectangle(12, 3, x1=4.0)
    lam, mu = layered_elasticity(mesh)
    form = ElasticityForm(degree=2, lam=lam, mu=mu,
                          f=np.array([0.0, -1.0]))
    return SchwarzSolver(mesh, form, num_subdomains=4, delta=1, nev=6,
                         seed=0, partition_method="rcb",
                         dirichlet=lambda x: x[:, 0] < 1e-9,
                         parallel=parallel)


@pytest.mark.parametrize("build", [_diffusion_solver, _elasticity_solver],
                         ids=["diffusion", "elasticity"])
def test_parallel_setup_bitwise_identical(build):
    ser = build(None)
    par = build(THREADS)
    # subdomain data
    for a, b in zip(ser.decomposition.subdomains,
                    par.decomposition.subdomains):
        assert np.array_equal(a.dofs, b.dofs)
        assert (a.A_dir != b.A_dir).nnz == 0
        assert np.array_equal(a.d, b.d)
    # deflation bases, bit for bit
    for Wa, Wb in zip(ser.deflation.W, par.deflation.W):
        assert np.array_equal(Wa, Wb)
    # coarse operator, bit for bit
    assert (ser.coarse.E != par.coarse.E).nnz == 0
    # per-subdomain timers survive the executor
    N = ser.decomposition.num_subdomains
    assert len(par.one_level.factor_times) == N
    assert len(par.deflation_times) == N
    # identical Krylov trajectory
    ra = ser.solve(tol=1e-8)
    rb = par.solve(tol=1e-8)
    assert ra.converged and rb.converged
    assert ra.iterations == rb.iterations
    assert np.array_equal(ra.x, rb.x)


def test_decomposition_parallel_accepts_string():
    s = _diffusion_solver("threads")
    assert s.parallel.backend == "threads"
    assert s.decomposition.parallel.backend == "threads"


# ----------------------------------------------------------------------
# Blocked kernels: multi-RHS solves must equal per-column loops
# ----------------------------------------------------------------------

def _spd_matrix(n, seed):
    rng = np.random.default_rng(seed)
    A = sp.random(n, n, density=0.1, random_state=np.random.RandomState(seed))
    A = A + A.T + 2 * n * sp.eye(n)
    return A.tocsr()


@pytest.mark.parametrize("backend", BACKENDS)
def test_multirhs_solve_matches_loop(backend):
    n, k = 40, 7
    A = _spd_matrix(n, seed=11)
    f = factorize(A, backend)
    rng = np.random.default_rng(5)
    Bk = rng.standard_normal((n, k))
    X_block = f.solve(Bk)
    X_loop = np.column_stack([f.solve(Bk[:, i]) for i in range(k)])
    assert X_block.shape == (n, k)
    assert np.allclose(X_block, X_loop, rtol=1e-12, atol=1e-12)
    # and the block actually solves the system
    assert np.allclose(A @ X_block, Bk, rtol=1e-8, atol=1e-8)


@pytest.mark.parametrize("cls", [OneLevelRAS, OneLevelASM],
                         ids=["ras", "asm"])
def test_apply_block_matches_apply(diffusion_decomposition, cls):
    prec = cls(diffusion_decomposition)
    n = diffusion_decomposition.problem.num_free
    rng = np.random.default_rng(7)
    R = rng.standard_normal((n, 5))
    out = prec.apply_block(R)
    ref = np.column_stack([prec.apply(R[:, i]) for i in range(5)])
    assert np.allclose(out, ref, rtol=1e-12, atol=1e-12)
    with pytest.raises(ValueError):
        prec.apply_block(R[:, 0])


def test_subspace_iteration_matrix_equals_lambda():
    """Sparse-matrix operators (blocked path) must agree with the legacy
    per-vector lambdas — same seed, same arithmetic, same pairs."""
    n = 40
    rng = np.random.default_rng(2)
    Q = np.linalg.qr(rng.standard_normal((n, n)))[0]
    M = sp.csr_matrix(Q @ np.diag(rng.uniform(1, 5, n)) @ Q.T)
    B = sp.csr_matrix(Q @ np.diag(np.concatenate(
        [rng.uniform(0.5, 4, 30), np.zeros(10)])) @ Q.T)
    Mf = factorize(M, "dense")
    r_mat = subspace_iteration(B, Mf, M, n, 3, seed=0, tol=1e-10)
    r_lam = subspace_iteration(lambda x: B @ x, Mf, lambda x: M @ x,
                               n, 3, seed=0, tol=1e-10)
    assert np.allclose(r_mat.values, r_lam.values, rtol=1e-9)


def test_m_orthonormalize_degenerate_uses_caller_rng():
    """A degenerate (duplicate) column is replaced from the caller's rng:
    two calls with equal seeds agree bitwise; the replacement no longer
    depends on the column index alone."""
    n = 30
    base = np.random.default_rng(0).standard_normal((n, 3))
    X = np.column_stack([base, base[:, 2]])      # last column dependent
    M = sp.eye(n, format="csr")
    q1 = _m_orthonormalize(X, M, rng=np.random.default_rng(42))
    q2 = _m_orthonormalize(X, M, rng=np.random.default_rng(42))
    q3 = _m_orthonormalize(X, M, rng=np.random.default_rng(7))
    assert np.array_equal(q1, q2)
    assert not np.allclose(q1[:, 3], q3[:, 3])
    # all results are M-orthonormal regardless
    for q in (q1, q3):
        assert np.allclose(q.T @ q, np.eye(4), atol=1e-10)
