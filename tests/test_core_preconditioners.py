"""Algebraic identities and convergence behaviour of the preconditioners."""

import numpy as np
import pytest

from repro.core import (
    CoarseOperator,
    DeflationSpace,
    OneLevelASM,
    OneLevelRAS,
    TwoLevelADEF1,
    TwoLevelADEF2,
    TwoLevelBNN,
    compute_deflation,
)
from repro.krylov import cg, gmres


@pytest.fixture(scope="module")
def stack(diffusion_decomposition):
    dec = diffusion_decomposition
    ras = OneLevelRAS(dec)
    Ws = [compute_deflation(s, nev=4, seed=s.index).W
          for s in dec.subdomains]
    space = DeflationSpace(dec, Ws)
    coarse = CoarseOperator(space)
    return dec, ras, space, coarse


class TestOneLevel:
    def test_ras_is_exact_for_single_subdomain(self, diffusion_problem):
        from repro.dd import Decomposition
        part = np.zeros(diffusion_problem.mesh.num_cells, dtype=int)
        part[0] = 1    # two subdomains minimum for a partition of unity
        part[:] = 0
        part[diffusion_problem.mesh.cell_centroids()[:, 0] > 0.5] = 1
        dec = Decomposition(diffusion_problem, part, delta=2)
        ras = OneLevelRAS(dec)
        A = diffusion_problem.matrix()
        b = diffusion_problem.rhs()
        res = gmres(A, b, M=ras.apply, tol=1e-10, restart=100, maxiter=200)
        assert res.converged

    def test_asm_symmetric(self, stack, rng):
        dec, *_ = stack
        asm = OneLevelASM(dec)
        n = dec.problem.num_free
        u, v = rng.standard_normal((2, n))
        # ⟨P⁻¹u, v⟩ = ⟨u, P⁻¹v⟩
        lhs = asm.apply(u) @ v
        rhs = u @ asm.apply(v)
        assert lhs == pytest.approx(rhs, rel=1e-9)

    def test_ras_not_symmetric(self, stack, rng):
        dec, ras, *_ = stack
        n = dec.problem.num_free
        u, v = rng.standard_normal((2, n))
        assert abs(ras.apply(u) @ v - u @ ras.apply(v)) > 1e-12

    def test_factor_times_recorded(self, stack):
        _, ras, *_ = stack
        assert len(ras.factor_times) == ras.dec.num_subdomains
        assert all(t >= 0 for t in ras.factor_times)


class TestADEF1Identities:
    def test_coarse_space_reproduced(self, stack, rng):
        """P⁻¹_A-DEF1 A Z y = Z y: the preconditioned operator acts as the
        identity on the coarse space (the deflation property)."""
        dec, ras, space, coarse = stack
        pre = TwoLevelADEF1(ras, coarse)
        A = dec.problem.matrix()
        y = rng.standard_normal(space.m)
        Zy = space.explicit_z() @ y
        out = pre.apply(A @ Zy)
        assert np.allclose(out, Zy, atol=1e-8 * max(abs(Zy).max(), 1e-30))

    def test_one_coarse_solve_per_application(self, stack, rng):
        dec, ras, space, coarse = stack
        pre = TwoLevelADEF1(ras, coarse)
        before = coarse.solves
        pre.apply(rng.standard_normal(dec.problem.num_free))
        assert coarse.solves - before == 1

    def test_adef2_two_coarse_solves(self, stack, rng):
        dec, ras, space, coarse = stack
        pre = TwoLevelADEF2(ras, coarse)
        before = coarse.solves
        pre.apply(rng.standard_normal(dec.problem.num_free))
        assert coarse.solves - before == 2

    def test_adef1_adef2_same_convergence(self, stack):
        """Eq. 6 vs eq. 7: similar numerical properties (same #it ±2)."""
        dec, ras, space, coarse = stack
        A = dec.problem.matrix()
        b = dec.problem.rhs()
        r1 = gmres(A, b, M=TwoLevelADEF1(ras, coarse).apply, tol=1e-8,
                   restart=60, maxiter=100)
        r2 = gmres(A, b, M=TwoLevelADEF2(ras, coarse).apply, tol=1e-8,
                   restart=60, maxiter=100)
        assert r1.converged and r2.converged
        assert abs(r1.iterations - r2.iterations) <= 3

    def test_two_level_beats_one_level(self, stack):
        dec, ras, space, coarse = stack
        A = dec.problem.matrix()
        b = dec.problem.rhs()
        two = gmres(A, b, M=TwoLevelADEF1(ras, coarse).apply, tol=1e-8,
                    restart=60, maxiter=200)
        one = gmres(A, b, M=ras.apply, tol=1e-8, restart=60, maxiter=200)
        assert two.converged
        assert two.iterations < one.iterations

    def test_bnn_symmetric_with_cg(self, diffusion_decomposition):
        dec = diffusion_decomposition
        asm = OneLevelASM(dec)
        Ws = [compute_deflation(s, nev=4, seed=s.index).W
              for s in dec.subdomains]
        coarse = CoarseOperator(DeflationSpace(dec, Ws))
        pre = TwoLevelBNN(asm, coarse)
        A = dec.problem.matrix()
        b = dec.problem.rhs()
        res = cg(A, b, M=pre.apply, tol=1e-8, maxiter=200)
        assert res.converged
        x = np.asarray(res.x)
        assert np.linalg.norm(A @ x - b) <= 1e-6 * np.linalg.norm(b)
