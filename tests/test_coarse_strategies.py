"""Coarse-solve strategies: registry, bitwise reference, agreement,
kernel-mirror guard, and the strategy-aware resilience degrade chain."""

from __future__ import annotations

import warnings

import numpy as np
import pytest

from repro import FaultPlan, FaultSpec, SchwarzSolver
from repro.common.errors import CoarseSolveError, ReproError
from repro.core import (
    CoarseOperator,
    DeflationSpace,
    DenseStrategy,
    MultilevelCoarseSolve,
    MultilevelStrategy,
    SparseStrategy,
    compute_deflation,
    get_strategy,
    strategy_names,
)
from repro.core.coarse_strategies import ENV_VAR
from repro.fem import channels_and_inclusions
from repro.fem.forms import DiffusionForm
from repro.mesh import unit_square


@pytest.fixture(scope="module")
def space(diffusion_decomposition):
    dec = diffusion_decomposition
    Ws = [compute_deflation(s, nev=4, seed=s.index).W
          for s in dec.subdomains]
    return DeflationSpace(dec, Ws)


def _solver(**kw):
    mesh = unit_square(16)
    form = DiffusionForm(degree=1,
                         kappa=channels_and_inclusions(mesh, seed=3))
    kw.setdefault("num_subdomains", 6)
    kw.setdefault("nev", 4)
    return SchwarzSolver(mesh, form, **kw)


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------

class TestRegistry:
    def test_builtin_names(self):
        assert strategy_names() == ["dense", "multilevel", "sparse"]

    def test_default_is_dense(self, monkeypatch):
        monkeypatch.delenv(ENV_VAR, raising=False)
        assert isinstance(get_strategy(None), DenseStrategy)

    def test_env_var_resolution(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "sparse")
        assert isinstance(get_strategy(None), SparseStrategy)

    def test_argument_beats_env(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "sparse")
        assert isinstance(get_strategy("multilevel"), MultilevelStrategy)

    def test_instance_passthrough(self):
        strat = MultilevelStrategy(inner_iters=4)
        assert get_strategy(strat) is strat

    def test_unknown_raises(self):
        with pytest.raises(ReproError, match="unknown coarse strategy"):
            get_strategy("nope")

    def test_describe(self):
        assert get_strategy("dense").describe() == {"name": "dense",
                                                    "exact": True}
        row = get_strategy("multilevel").describe()
        assert row["name"] == "multilevel" and row["exact"] is False


# ----------------------------------------------------------------------
# Agreement across strategies
# ----------------------------------------------------------------------

class TestAgreement:
    @pytest.fixture(scope="class")
    def ops(self, space):
        return {name: CoarseOperator(space, strategy=name)
                for name in ("dense", "sparse", "multilevel")}

    def test_sparse_assembly_bitwise_matches_dense(self, ops):
        Ed, Es = ops["dense"].E, ops["sparse"].E
        assert np.array_equal(Ed.toarray(), Es.toarray())
        # canonical CSR form too: same floats through a different route
        Ed = Ed.copy()
        Ed.sort_indices()
        assert np.array_equal(Ed.indptr, Es.indptr)
        assert np.array_equal(Ed.indices, Es.indices)
        assert np.array_equal(Ed.data, Es.data)

    def test_sparse_solve_bitwise_matches_dense(self, ops, rng):
        w = rng.standard_normal(ops["dense"].dim)
        assert np.array_equal(ops["dense"].solve(w), ops["sparse"].solve(w))

    def test_block_solve_bitwise_dense_vs_sparse(self, ops, rng):
        W = rng.standard_normal((ops["dense"].dim, 3))
        assert np.array_equal(ops["dense"].solve(W), ops["sparse"].solve(W))

    def test_multilevel_solve_agrees_to_tolerance(self, ops, rng):
        w = rng.standard_normal(ops["dense"].dim)
        ref = ops["dense"].solve(w)
        y = ops["multilevel"].solve(w)
        assert np.linalg.norm(y - ref) <= 1e-6 * np.linalg.norm(ref)

    def test_multilevel_block_solve_agrees(self, ops, rng):
        W = rng.standard_normal((ops["dense"].dim, 3))
        ref = ops["dense"].solve(W)
        Y = ops["multilevel"].solve(W)
        assert Y.shape == ref.shape
        assert np.linalg.norm(Y - ref) <= 1e-6 * np.linalg.norm(ref)

    def test_multilevel_handle_is_inexact(self, ops):
        fact = ops["multilevel"].factorization
        assert isinstance(fact, MultilevelCoarseSolve)
        assert fact.exact is False
        assert fact.inner_iterations > 0
        assert ops["multilevel"].nnz_factor() == fact.nnz_factor

    def test_too_few_subdomains_raises(self, space):
        import scipy.sparse as sp
        E = sp.identity(6, format="csr")
        with pytest.raises(CoarseSolveError, match=">= 4"):
            MultilevelCoarseSolve(E, [0, 2, 4, 6], [[1], [0, 2], [1]])


# ----------------------------------------------------------------------
# Solver plumbing
# ----------------------------------------------------------------------

class TestSolverPlumbing:
    def test_outer_iterations_within_five_of_dense(self):
        its = {}
        for strat, kry in (("dense", "gmres"), ("sparse", "gmres"),
                           ("multilevel", "fgmres")):
            s = _solver(coarse_strategy=strat, krylov=kry)
            r = s.solve(tol=1e-8)
            assert r.converged
            its[strat] = r.iterations
        assert its["sparse"] == its["dense"]       # bitwise same solve
        assert its["multilevel"] <= its["dense"] + 5

    def test_inexact_with_rigid_krylov_warns(self):
        with pytest.warns(RuntimeWarning, match="flexible"):
            _solver(coarse_strategy="multilevel", krylov="gmres")

    def test_env_var_reaches_solver(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "sparse")
        s = _solver()
        assert s.coarse_strategy.name == "sparse"
        assert s.coarse.strategy.name == "sparse"

    def test_gauges_recorded(self, space):
        from repro.obs import Recorder
        rec = Recorder()
        op = CoarseOperator(space, strategy="sparse", recorder=rec)
        assert rec.gauges["coarse.dim"] == op.dim
        assert rec.gauges["coarse.nnz"] == op.E.nnz
        assert rec.gauges["coarse.nnz_factor"] == op.nnz_factor()
        ev = [e for e in rec.events if e.name == "coarse.strategy"]
        assert ev and ev[0].attrs["name"] == "sparse"

    def test_multilevel_level2_gauges(self, space):
        from repro.obs import Recorder
        rec = Recorder()
        op = CoarseOperator(space, strategy="multilevel", recorder=rec)
        assert rec.gauges["coarse.l2_parts"] >= 2
        assert rec.gauges["coarse.l2_dim"] >= rec.gauges["coarse.l2_parts"]
        op.solve(np.ones(op.dim))
        assert rec.counters["coarse.l2_inner_iterations"] > 0


# ----------------------------------------------------------------------
# Kernel-mirror guard: inexact strategies never get an LDLᵀ mirror
# ----------------------------------------------------------------------

class TestKernelGuard:
    def test_ldl_mirror_refused_for_inexact_strategy(self, space):
        from repro.kernels.fp32 import make_ldl_coarse_solve
        op = CoarseOperator(space, strategy="multilevel")
        # returns None before even touching the compiled library
        assert make_ldl_coarse_solve(None, op, np.float64, 1e-8) is None

    def test_reference_backend_never_mirrors(self, space):
        op = CoarseOperator(space, strategy="multilevel")
        assert op._kernel_solve is None


# ----------------------------------------------------------------------
# Strategy-aware resilience degrade chain
# ----------------------------------------------------------------------

class TestDegradeChain:
    def test_level2_fault_degrades_to_sparse_direct(self):
        """A nan fault inside the level-2 inner solve must walk the
        chain multilevel → sparse-direct and converge anyway."""
        plan = FaultPlan([FaultSpec("nan", "coarse_level2", nth=0)])
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            solver = _solver(coarse_strategy="multilevel", krylov="fgmres",
                             faults=plan, recovery="degrade")
            report = solver.solve(tol=1e-8)
        assert report.converged
        assert solver.coarse.fallbacks >= 1
        # the inexact handle was replaced by an exact sparse-direct one
        fact = solver.coarse.factorization
        assert not isinstance(fact, MultilevelCoarseSolve)
        assert getattr(fact, "exact", True)

    def test_level2_fault_without_recovery_raises(self):
        plan = FaultPlan([FaultSpec("nan", "coarse_level2", nth=0)])
        solver = _solver(coarse_strategy="multilevel", krylov="fgmres",
                         faults=plan)
        with pytest.raises(CoarseSolveError):
            solver.solve(tol=1e-8)

    def test_fallback_event_recorded(self):
        from repro.obs import Recorder
        rec = Recorder()
        plan = FaultPlan([FaultSpec("nan", "coarse_level2", nth=0)])
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            solver = _solver(coarse_strategy="multilevel", krylov="fgmres",
                             faults=plan, recovery="degrade", recorder=rec)
            solver.solve(tol=1e-8)
        ev = [e for e in rec.events if e.name == "recovery.coarse_fallback"]
        assert any(e.attrs.get("to") == "sparse_direct" for e in ev)
