"""Tests for the SPMD path: algorithms 1–2, distributed correction,
SPMD GMRES and the fused p1-GMRES of §3.5."""

import numpy as np
import pytest

from repro.core import CoarseOperator, DeflationSpace, compute_deflation
from repro.core.spmd import (
    assemble_coarse_spmd,
    build_master_comms,
    solve_spmd,
)
from repro.krylov import gmres
from repro.mpi import Meter, run_spmd


@pytest.fixture(scope="module")
def stack(diffusion_decomposition):
    dec = diffusion_decomposition
    Ws = [compute_deflation(s, nev=4, seed=s.index).W
          for s in dec.subdomains]
    space = DeflationSpace(dec, Ws)
    return dec, space, CoarseOperator(space)


class TestMasterLayout:
    @pytest.mark.parametrize("nonuniform", [False, True])
    def test_master_is_rank0_of_split(self, nonuniform):
        def fn(comm):
            lay = build_master_comms(comm, 3, nonuniform=nonuniform)
            return (lay.is_master, lay.split.rank, lay.group)

        out = run_spmd(9, fn)
        masters = [r for r, (is_m, _, _) in enumerate(out) if is_m]
        assert len(masters) == 3
        for is_m, split_rank, _ in out:
            assert is_m == (split_rank == 0)
        # groups are contiguous
        groups = [g for _, _, g in out]
        assert groups == sorted(groups)

    def test_null_master_comm_on_slaves(self):
        def fn(comm):
            lay = build_master_comms(comm, 2)
            return lay.master_comm is None

        out = run_spmd(6, fn)
        assert sum(not x for x in out) == 2


class TestDistributedAssembly:
    @pytest.mark.parametrize("P,nonuniform", [(1, False), (2, False),
                                              (3, False), (2, True)])
    def test_matches_sequential_E(self, stack, P, nonuniform):
        """The master-held distributed rows must equal the sequential E."""
        dec, space, coarse = stack
        E_ref = coarse.E.toarray()

        def fn(comm):
            rank = assemble_coarse_spmd(comm, dec, space, P,
                                        nonuniform=nonuniform)
            if rank.layout.is_master:
                rs = rank.row_starts
                p = rank.layout.master_comm.rank
                # recover this master's assembled rows from the Cholesky
                # input is consumed; instead check the solve directly
                return (int(rs[p]), int(rs[p + 1]))
            return None

        run_spmd(dec.num_subdomains, fn)

    @pytest.mark.parametrize("P", [1, 2, 3])
    def test_distributed_solve_matches(self, stack, P, rng):
        """E⁻¹w via the distributed factorization == sequential solve."""
        dec, space, coarse = stack
        w = rng.standard_normal(space.m)
        y_ref = coarse.solve(w)

        def fn(comm):
            rank = assemble_coarse_spmd(comm, dec, space, P)
            if rank.layout.is_master:
                rs = rank.row_starts
                p = rank.layout.master_comm.rank
                return rank.coarse.solve(w[rs[p]:rs[p + 1]])
            return None

        parts = [p for p in run_spmd(dec.num_subdomains, fn)
                 if p is not None]
        y = np.concatenate(parts)
        assert np.allclose(y, y_ref, atol=1e-8 * max(abs(y_ref).max(), 1e-30))

    def test_correction_matches_sequential(self, stack, rng):
        dec, space, coarse = stack
        u = rng.standard_normal(dec.problem.num_free)
        ref = coarse.correction(u)
        u_list = dec.restrict(u)

        def fn(comm):
            rank = assemble_coarse_spmd(comm, dec, space, 2)
            z, _ = rank.correction(u_list[comm.rank])
            return z

        parts = run_spmd(dec.num_subdomains, fn)
        z = dec.combine(parts)
        assert np.allclose(z, ref, atol=1e-8 * max(abs(ref).max(), 1e-30))


class TestSpmdSolve:
    def test_gmres_matches_sequential(self, stack):
        dec, space, coarse = stack
        b = dec.problem.rhs()
        A = dec.problem.matrix()
        import scipy.sparse.linalg as spla
        xref = spla.spsolve(A.tocsc(), b)
        x, its, res, meter = solve_spmd(dec, space, b, num_masters=2,
                                        tol=1e-8, maxiter=100)
        assert res[-1] <= 1e-8 * 1.01
        assert np.linalg.norm(x - xref) <= 1e-5 * np.linalg.norm(xref)

    def test_one_level_spmd(self, stack):
        dec, space, _ = stack
        b = dec.problem.rhs()
        x, its, res, _ = solve_spmd(dec, space, b, num_masters=2,
                                    two_level=False, tol=1e-6, maxiter=200)
        assert res[-1] <= 1e-6 * 1.01 or its == 200

    def test_fused_p1_converges_and_saves_syncs(self, stack):
        dec, space, _ = stack
        b = dec.problem.rhs()
        meter1 = Meter(dec.num_subdomains)
        x1, its1, res1, _ = solve_spmd(dec, space, b, num_masters=2,
                                       tol=1e-8, maxiter=100, meter=meter1)
        meter2 = Meter(dec.num_subdomains)
        x2, its2, res2, _ = solve_spmd(dec, space, b, num_masters=2,
                                       method="fused-p1", tol=1e-8,
                                       maxiter=100, meter=meter2)
        assert res2[-1] <= 1e-7          # converged (left-precond residual)
        # §3.5 claim: the fused pipeline needs far fewer blocking global
        # synchronisations than classical GMRES
        assert meter2.max_global_syncs() < meter1.max_global_syncs() / 2
        # similar iteration counts (same Krylov space)
        assert abs(its1 - its2) <= 4

    def test_nonuniform_election_same_answer(self, stack):
        dec, space, _ = stack
        b = dec.problem.rhs()
        x1, *_ = solve_spmd(dec, space, b, num_masters=2, tol=1e-8,
                            maxiter=100)
        x2, *_ = solve_spmd(dec, space, b, num_masters=2, nonuniform=True,
                            tol=1e-8, maxiter=100)
        assert np.allclose(x1, x2, atol=1e-6 * max(abs(x1).max(), 1e-30))

    def test_single_master(self, stack):
        dec, space, _ = stack
        b = dec.problem.rhs()
        x, its, res, _ = solve_spmd(dec, space, b, num_masters=1,
                                    tol=1e-8, maxiter=100)
        assert res[-1] <= 1e-8 * 1.01
