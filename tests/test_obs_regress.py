"""Tests for the performance-regression gate (repro.obs.regress)."""

import json
from pathlib import Path

import pytest

from repro.obs import (RegressionReport, Thresholds, compare,
                       compare_dirs, compare_files, inject_slowdown)
from repro.obs.regress import classify, flatten_metrics, same_scale

RESULTS = Path(__file__).resolve().parents[1] / "results"


def payload(**extra):
    """A minimal bench payload in the tracked BENCH_*.json shape."""
    out = {
        "provenance": {"kernel_backend": "numpy", "precision": "fp64"},
        "problem": {"n": 32, "num_subdomains": 8, "smoke": False},
        "apply_ms": 10.0,
        "iterations": 12,
        "speedup_vs_numpy": 2.0,
        "coarse_nnz": 768,
        "label": "not-a-number",
    }
    out.update(extra)
    return out


class TestClassify:
    @pytest.mark.parametrize("path,kind", [
        ("backends.fp32.apply_ms", "time"),
        ("t_fact", "time"),
        ("setup_seconds", "time"),
        ("iterations", "count"),
        ("counters.kernel.compiled_local_applies", "count"),
        ("coarse_nnz", "size"),
        ("bytes_sent", "size"),
        ("apply_speedup_vs_numpy", "higher"),
        ("residual", "info"),
    ])
    def test_kinds(self, path, kind):
        assert classify(path) == kind


class TestFlatten:
    def test_numeric_leaves_only(self):
        flat = flatten_metrics(payload())
        assert flat["apply_ms"] == 10.0
        assert flat["iterations"] == 12.0
        assert "label" not in flat

    def test_identity_subtrees_excluded(self):
        flat = flatten_metrics(payload())
        assert not any(k.startswith(("provenance", "problem"))
                       for k in flat)

    def test_nested_and_lists(self):
        flat = flatten_metrics({"a": {"b": [1, 2]}, "flag": True})
        assert flat == {"a.b.0": 1.0, "a.b.1": 2.0}


class TestSameScale:
    def test_equal_scales(self):
        assert same_scale(payload(), payload())

    def test_smoke_vs_full_differs(self):
        smoke = payload()
        smoke["problem"] = dict(smoke["problem"], smoke=True)
        assert not same_scale(payload(), smoke)

    def test_missing_problem_section_is_compatible(self):
        assert same_scale({}, payload())


class TestCompare:
    def test_identical_payloads_pass(self):
        report = compare(payload(), payload())
        assert report.passed
        assert all(c.status == "ok" for c in report.checks)

    def test_injected_slowdown_flagged(self):
        slow = inject_slowdown(payload(), factor=2.0)
        report = compare(payload(), slow)
        assert not report.passed
        flagged = {c.metric for c in report.regressions}
        assert "apply_ms" in flagged
        assert "iterations" in flagged

    def test_small_wobble_tolerated(self):
        wobbly = payload(apply_ms=11.5, iterations=13)
        assert compare(payload(), wobbly).passed

    def test_speedup_drop_flagged(self):
        report = compare(payload(), payload(speedup_vs_numpy=1.0))
        assert any(c.metric == "speedup_vs_numpy"
                   and c.status == "regression"
                   for c in report.checks)

    def test_improvement_reported(self):
        report = compare(payload(), payload(apply_ms=5.0))
        assert report.passed
        assert any(c.metric == "apply_ms" and c.status == "improved"
                   for c in report.checks)

    def test_scale_mismatch_skips_scale_dependent_metrics(self):
        # a smoke run: slower per-apply, tiny speedup, huge nnz — none
        # of that is comparable to the full-scale baseline
        smoke = payload(apply_ms=400.0, coarse_nnz=10 ** 7,
                        speedup_vs_numpy=1.1)
        smoke["problem"] = dict(smoke["problem"], smoke=True, n=8)
        report = compare(payload(), smoke)
        by_metric = {c.metric: c for c in report.checks}
        assert by_metric["apply_ms"].status == "skipped"
        assert by_metric["coarse_nnz"].status == "skipped"
        assert by_metric["speedup_vs_numpy"].status == "skipped"
        # algorithmic counts are still gated across scales
        assert by_metric["iterations"].status == "ok"
        assert report.passed
        assert any("scales differ" in n for n in report.notes)

    def test_scale_mismatch_still_gates_iteration_blowup(self):
        smoke = payload(iterations=40)
        smoke["problem"] = dict(smoke["problem"], smoke=True)
        report = compare(payload(), smoke)
        assert any(c.metric == "iterations" and c.status == "regression"
                   for c in report.checks)

    def test_provenance_mismatch_noted(self):
        other = payload()
        other["provenance"] = {"kernel_backend": "compiled",
                               "precision": "fp64"}
        report = compare(payload(), other)
        assert any("kernel_backend" in n for n in report.notes)

    def test_custom_thresholds(self):
        th = Thresholds(time_ratio=1.05, time_abs=0.0)
        report = compare(payload(), payload(apply_ms=11.5),
                         thresholds=th)
        assert not report.passed


class TestFilesAndDirs:
    def test_compare_dirs_round_trip(self, tmp_path):
        base, cur = tmp_path / "base", tmp_path / "cur"
        base.mkdir(), cur.mkdir()
        (base / "BENCH_x.json").write_text(json.dumps(payload()))
        (cur / "BENCH_x.json").write_text(
            json.dumps(inject_slowdown(payload())))
        report = compare_dirs(base, cur)
        assert not report.passed
        assert all(c.metric.startswith("BENCH_x:")
                   for c in report.checks)

    def test_unmatched_baseline_noted(self, tmp_path):
        base, cur = tmp_path / "base", tmp_path / "cur"
        base.mkdir(), cur.mkdir()
        (base / "BENCH_only.json").write_text(json.dumps(payload()))
        report = compare_dirs(base, cur)
        assert report.passed
        assert any("no current run" in n or "nothing gated" in n
                   for n in report.notes)

    @pytest.mark.skipif(not (RESULTS / "BENCH_kernel_backends.json")
                        .exists(), reason="no tracked baselines")
    def test_tracked_baselines_self_compare(self):
        # every tracked bench file gates cleanly against itself, and
        # the injected 2x slowdown is always flagged (the CI self-test)
        for path in sorted(RESULTS.glob("BENCH_*.json")):
            data = json.loads(path.read_text())
            assert compare(data, data, name=path.stem).passed
            assert not compare(data, inject_slowdown(data),
                               name=path.stem).passed


class TestReportRendering:
    def test_render_and_markdown(self):
        report = compare(payload(), inject_slowdown(payload()),
                         name="unit")
        text = report.render()
        assert "FAIL" in text and "regression" in text
        md = report.to_markdown()
        assert md.startswith("# Performance regression report")
        assert "FAIL" in md and "`apply_ms`" in md

    def test_pass_render(self):
        report = compare(payload(), payload(), name="unit")
        assert "PASS" in report.render()
        assert "PASS" in report.to_markdown()

    def test_merge_accumulates(self):
        a = compare(payload(), payload(), name="a")
        b = compare(payload(), inject_slowdown(payload()), name="b")
        n_a, n_b = len(a.checks), len(b.checks)
        a.merge(b)
        assert len(a.checks) == n_a + n_b
        assert not a.passed
