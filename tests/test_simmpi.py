"""Tests for the simulated MPI layer: semantics, metering, failure modes."""

import numpy as np
import pytest

from repro.common.errors import CommunicatorError
from repro.mpi import Meter, payload_bytes, run_spmd, waitany


def spmd(nranks, fn, **kw):
    return run_spmd(nranks, fn, **kw)


class TestPointToPoint:
    def test_ring(self):
        def fn(comm):
            nxt = (comm.rank + 1) % comm.size
            prv = (comm.rank - 1) % comm.size
            comm.send(comm.rank, nxt, tag=1)
            return comm.recv(prv, tag=1)

        assert spmd(4, fn) == [3, 0, 1, 2]

    def test_numpy_payload(self):
        def fn(comm):
            if comm.rank == 0:
                comm.send(np.arange(10.0), 1)
                return None
            if comm.rank == 1:
                return comm.recv(0)
            return None

        out = spmd(3, fn)
        assert np.array_equal(out[1], np.arange(10.0))

    def test_tag_separation(self):
        def fn(comm):
            if comm.rank == 0:
                comm.send("a", 1, tag=1)
                comm.send("b", 1, tag=2)
            elif comm.rank == 1:
                b = comm.recv(0, tag=2)
                a = comm.recv(0, tag=1)
                return (a, b)
            return None

        assert spmd(2, fn)[1] == ("a", "b")

    def test_fifo_per_channel(self):
        def fn(comm):
            if comm.rank == 0:
                for i in range(5):
                    comm.send(i, 1)
            elif comm.rank == 1:
                return [comm.recv(0) for _ in range(5)]
            return None

        assert spmd(2, fn)[1] == list(range(5))

    def test_invalid_dest(self):
        def fn(comm):
            comm.send(1, 5)

        with pytest.raises(CommunicatorError):
            spmd(2, fn)

    def test_waitany_empty(self):
        with pytest.raises(CommunicatorError):
            waitany([])


class TestCollectives:
    def test_bcast(self):
        def fn(comm):
            return comm.bcast("payload" if comm.rank == 2 else None, root=2)

        assert spmd(4, fn) == ["payload"] * 4

    def test_gather_scatter_roundtrip(self):
        def fn(comm):
            data = comm.rank ** 2
            g = comm.gather(data, root=0)
            if comm.rank == 0:
                back = comm.scatter([x + 1 for x in g], root=0)
            else:
                back = comm.scatter(None, root=0)
            return back

        assert spmd(4, fn) == [r * r + 1 for r in range(4)]

    def test_allreduce_ops(self):
        def fn(comm):
            return (comm.allreduce(comm.rank),
                    comm.allreduce(comm.rank, op="max"),
                    comm.allreduce(comm.rank, op="min"))

        out = spmd(5, fn)
        assert out[0] == (10, 4, 0)

    def test_allreduce_arrays(self):
        def fn(comm):
            return comm.allreduce(np.full(3, float(comm.rank)), op="max")

        out = spmd(3, fn)
        assert np.array_equal(out[0], np.full(3, 2.0))

    def test_allreduce_callable_op(self):
        def fn(comm):
            return comm.allreduce(comm.rank + 1, op=lambda a, b: a * b)

        assert spmd(4, fn)[0] == 24

    def test_unknown_op(self):
        def fn(comm):
            comm.allreduce(1, op="median")

        with pytest.raises(CommunicatorError):
            spmd(2, fn)

    def test_alltoall(self):
        def fn(comm):
            return comm.alltoall([(comm.rank, j) for j in range(comm.size)])

        out = spmd(3, fn)
        assert out[1] == [(0, 1), (1, 1), (2, 1)]

    def test_allgather(self):
        def fn(comm):
            return comm.allgather(comm.rank * 10)

        assert spmd(3, fn) == [[0, 10, 20]] * 3

    def test_reduce_root_only(self):
        def fn(comm):
            return comm.reduce(1, root=1)

        assert spmd(3, fn) == [None, 3, None]

    def test_scatter_bad_length(self):
        def fn(comm):
            comm.scatter([1] if comm.rank == 0 else None, root=0)

        with pytest.raises(CommunicatorError):
            spmd(2, fn)


class TestSplit:
    def test_split_even_odd(self):
        def fn(comm):
            sub = comm.split(comm.rank % 2)
            return (sub.size, sub.rank, sub.allreduce(comm.rank))

        out = spmd(6, fn)
        assert out[0] == (3, 0, 0 + 2 + 4)
        assert out[1] == (3, 0, 1 + 3 + 5)
        assert out[2] == (3, 1, 6)

    def test_split_null(self):
        def fn(comm):
            sub = comm.split(0 if comm.rank == 0 else None)
            return sub is None

        assert spmd(3, fn) == [False, True, True]

    def test_split_key_ordering(self):
        def fn(comm):
            sub = comm.split(0, key=-comm.rank)   # reversed ranks
            return sub.rank

        assert spmd(3, fn) == [2, 1, 0]

    def test_nested_split(self):
        def fn(comm):
            sub = comm.split(comm.rank // 2)
            subsub = sub.split(0)
            return subsub.allreduce(1)

        assert spmd(4, fn) == [2, 2, 2, 2]


class TestNeighborhood:
    def test_chain_exchange(self):
        def fn(comm):
            nbrs = [r for r in (comm.rank - 1, comm.rank + 1)
                    if 0 <= r < comm.size]
            g = comm.dist_graph_create_adjacent(nbrs)
            return g.neighbor_alltoall([comm.rank * 100] * len(nbrs))

        out = spmd(4, fn)
        assert out[0] == [100]
        assert out[1] == [0, 200]

    def test_wrong_count(self):
        def fn(comm):
            g = comm.dist_graph_create_adjacent([])
            g.ineighbor_alltoall([1])

        with pytest.raises(CommunicatorError):
            spmd(2, fn)


class TestErrorsAndMeter:
    def test_exception_propagates(self):
        def fn(comm):
            if comm.rank == 1:
                raise ValueError("rank 1 died")
            comm.barrier()

        with pytest.raises(ValueError, match="rank 1 died"):
            spmd(3, fn)

    def test_meter_counts_messages(self):
        meter = Meter(2)

        def fn(comm):
            if comm.rank == 0:
                comm.send(np.zeros(100), 1)
            else:
                comm.recv(0)

        spmd(2, fn, meter=meter)
        assert meter.total_messages() == 1
        assert meter.total_bytes() == 800

    def test_meter_counts_collectives(self):
        meter = Meter(3)

        def fn(comm):
            comm.allreduce(1.0)
            comm.barrier()

        spmd(3, fn, meter=meter)
        assert meter.total_collectives("allreduce") == 3
        assert meter.total_collectives("barrier") == 3
        assert meter.max_global_syncs() == 2

    def test_split_collectives_not_global(self):
        meter = Meter(4)

        def fn(comm):
            sub = comm.split(comm.rank % 2)
            sub.allreduce(1)

        spmd(4, fn, meter=meter)
        # the split itself synchronises globally; the sub allreduce doesn't
        assert meter.max_global_syncs() == 1

    def test_payload_bytes(self):
        assert payload_bytes(np.zeros(10)) == 80
        assert payload_bytes(3.14) == 8
        assert payload_bytes(None) == 0
        assert payload_bytes([np.zeros(2), 1.0]) == 24
        assert payload_bytes((np.zeros(4),)) == 32

    def test_single_rank(self):
        def fn(comm):
            assert comm.allreduce(5) == 5
            assert comm.bcast(7) == 7
            return comm.rank

        assert spmd(1, fn) == [0]

    def test_invalid_nranks(self):
        with pytest.raises(CommunicatorError):
            run_spmd(0, lambda c: None)
