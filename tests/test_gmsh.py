"""Tests for the Gmsh MSH 2.2 reader/writer."""

import numpy as np
import pytest

from repro.common.errors import MeshError
from repro.mesh import unit_cube, unit_square
from repro.mesh.gmsh import read_gmsh, write_gmsh

MSH_2D = """$MeshFormat
2.2 0 8
$EndMeshFormat
$Nodes
4
1 0 0 0
2 1 0 0
3 1 1 0
4 0 1 0
$EndNodes
$Elements
5
1 15 2 0 1 1
2 1 2 0 1 1 2
3 1 2 0 2 2 3
4 2 2 7 1 1 2 3
5 2 2 9 1 1 3 4
$EndElements
"""


class TestRead:
    def test_reads_triangles_skips_lower_dim(self, tmp_path):
        p = tmp_path / "square.msh"
        p.write_text(MSH_2D)
        mesh, tags = read_gmsh(p)
        assert mesh.dim == 2
        assert mesh.num_cells == 2
        assert mesh.num_vertices == 4
        assert tags.tolist() == [7, 9]
        assert mesh.total_volume() == pytest.approx(1.0)

    def test_orientation_fixed(self, tmp_path):
        flipped = MSH_2D.replace("4 2 2 7 1 1 2 3", "4 2 2 7 1 1 3 2")
        p = tmp_path / "flip.msh"
        p.write_text(flipped)
        mesh, _ = read_gmsh(p)
        assert np.all(mesh.cell_volumes() > 0)

    def test_missing_sections(self, tmp_path):
        p = tmp_path / "bad.msh"
        p.write_text("$MeshFormat\n2.2 0 8\n$EndMeshFormat\n")
        with pytest.raises(MeshError):
            read_gmsh(p)

    def test_unsupported_version(self, tmp_path):
        p = tmp_path / "v4.msh"
        p.write_text("$MeshFormat\n4.1 0 8\n$EndMeshFormat\n")
        with pytest.raises(MeshError):
            read_gmsh(p)

    def test_unterminated_section(self, tmp_path):
        p = tmp_path / "trunc.msh"
        p.write_text("$MeshFormat\n2.2 0 8\n")
        with pytest.raises(MeshError):
            read_gmsh(p)


class TestRoundTrip:
    @pytest.mark.parametrize("gen", [lambda: unit_square(3),
                                     lambda: unit_cube(2)])
    def test_write_read(self, gen, tmp_path):
        m = gen()
        p = tmp_path / "m.msh"
        tags = np.arange(m.num_cells) % 3
        write_gmsh(m, p, physical_tags=tags)
        m2, tags2 = read_gmsh(p)
        assert m2.num_cells == m.num_cells
        assert m2.total_volume() == pytest.approx(m.total_volume())
        assert np.array_equal(tags2, tags)

    def test_solver_on_gmsh_mesh(self, tmp_path):
        """End-to-end: write, read back, partition + solve; physical
        tags drive the coefficient (the FreeFem++/Gmsh workflow)."""
        from repro import SchwarzSolver
        from repro.fem.forms import DiffusionForm
        m = unit_square(12)
        p = tmp_path / "m.msh"
        tags = (m.cell_centroids()[:, 0] > 0.5).astype(np.int64)
        write_gmsh(m, p, physical_tags=tags)
        mesh, tags2 = read_gmsh(p)
        kappa = np.where(tags2 == 1, 1e4, 1.0)
        s = SchwarzSolver(mesh, DiffusionForm(degree=2, kappa=kappa),
                          num_subdomains=4, nev=4)
        rep = s.solve(tol=1e-8, maxiter=300)
        assert rep.converged

    def test_bad_tags_shape(self, tmp_path):
        m = unit_square(2)
        with pytest.raises(MeshError):
            write_gmsh(m, tmp_path / "x.msh",
                       physical_tags=np.zeros(3, dtype=np.int64))
