"""Tests for the unified telemetry subsystem (repro.obs)."""

import json
import threading

import numpy as np
import pytest
import scipy.sparse as sp

from repro.obs import (NULL_RECORDER, EventRecord, NullRecorder, Recorder,
                       SpanRecord, iteration_residuals, load_trace,
                       render_trace, summary, to_chrome_trace, to_jsonl,
                       write_trace)


class TestRecorder:
    def test_span_records_times(self):
        rec = Recorder()
        with rec.span("work"):
            pass
        (s,) = rec.spans
        assert s.name == "work"
        assert 0 <= s.start <= s.end
        assert s.duration >= 0
        assert s.parent is None
        assert s.track == "main"

    def test_nesting_assigns_parents(self):
        rec = Recorder()
        with rec.span("outer"):
            with rec.span("inner"):
                with rec.span("leaf"):
                    pass
            with rec.span("sibling"):
                pass
        leaf = rec.find("leaf")[0]
        assert [a.name for a in rec.ancestors_of(leaf)] == ["inner",
                                                            "outer"]
        assert rec.nested_within("leaf", "outer")
        assert rec.nested_within("sibling", "outer")
        assert not rec.nested_within("sibling", "inner")
        assert not rec.nested_within("missing", "outer")

    def test_sequential_spans_do_not_nest(self):
        rec = Recorder()
        with rec.span("a"):
            pass
        with rec.span("b"):
            pass
        assert rec.find("b")[0].parent is None

    def test_exception_closes_span(self):
        rec = Recorder()
        with pytest.raises(RuntimeError):
            with rec.span("boom"):
                raise RuntimeError()
        assert len(rec.find("boom")) == 1
        # the per-thread stack is clean: the next span is a root
        with rec.span("after"):
            pass
        assert rec.find("after")[0].parent is None

    def test_counters_and_gauges(self):
        rec = Recorder()
        rec.add("matvecs")
        rec.add("matvecs", 2)
        rec.add("bytes", 100)
        rec.gauge("dim", 5)
        rec.gauge("dim", 7)
        assert rec.counters == {"matvecs": 3, "bytes": 100}
        assert rec.gauges == {"dim": 7}

    def test_events(self):
        rec = Recorder()
        rec.event("iteration", attrs={"k": 0, "residual": 1.0})
        (e,) = rec.events
        assert e.name == "iteration"
        assert e.attrs["residual"] == 1.0
        assert e.time >= 0

    def test_totals(self):
        rec = Recorder()
        for _ in range(3):
            with rec.span("p"):
                pass
        t = rec.totals()["p"]
        assert t["count"] == 3
        assert t["seconds"] >= 0

    def test_thread_safety_and_tracks(self):
        rec = Recorder()

        def worker(i):
            for _ in range(50):
                with rec.span(f"task{i}"):
                    rec.add("done")

        threads = [threading.Thread(target=worker, args=(i,),
                                    name=f"w{i}") for i in range(4)]
        with rec.span("main_work"):
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        assert rec.counters["done"] == 200
        assert len(rec.spans) == 201
        # worker spans land on their own tracks and don't nest inside
        # the main thread's open span
        for i in range(4):
            s = rec.find(f"task{i}")[0]
            assert s.track == f"w{i}"
            assert s.parent is None
        assert set(rec.tracks()) == {"main", "w0", "w1", "w2", "w3"}

    def test_explicit_track(self):
        rec = Recorder()
        with rec.span("exchange", track="rank3"):
            pass
        assert rec.find("exchange")[0].track == "rank3"


class TestNullRecorder:
    def test_disabled_and_inert(self):
        rec = NullRecorder()
        assert not rec.enabled
        with rec.span("x"):
            rec.add("c")
            rec.gauge("g", 1)
            rec.event("e")
        assert not rec.spans and not rec.events
        assert not rec.counters and not rec.gauges

    def test_shared_instance(self):
        assert not NULL_RECORDER.enabled
        # reentrant: the same no-op span handle can nest
        with NULL_RECORDER.span("a"):
            with NULL_RECORDER.span("b"):
                pass


class TestIterationResiduals:
    def test_corrected_replaces_last(self):
        rec = Recorder()
        rec.event("iteration", attrs={"k": 0, "residual": 1.0})
        rec.event("iteration", attrs={"k": 1, "residual": 0.5})
        rec.event("iteration", attrs={"k": 1, "residual": 0.4,
                                      "corrected": True})
        rec.event("restart", attrs={"cycle": 1, "k": 1})
        assert iteration_residuals(rec) == [1.0, 0.4]


@pytest.fixture
def sample_recorder():
    rec = Recorder()
    with rec.span("setup"):
        with rec.span("factorize", attrs={"nsub": 2}):
            pass
    with rec.span("solve"):
        with rec.span("apply", track="main"):
            with rec.span("coarse_solve"):
                pass
    rec.event("iteration", attrs={"k": 0, "residual": 1.0})
    rec.add("matvecs", 4)
    rec.gauge("coarse_dim", 8)
    return rec


class TestExporters:
    def test_chrome_structure(self, sample_recorder):
        doc = to_chrome_trace(sample_recorder)
        evs = doc["traceEvents"]
        phases = {e["ph"] for e in evs}
        assert {"M", "X", "i", "C"} <= phases
        meta = [e for e in evs if e["ph"] == "M"]
        assert {"thread_name"} == {e["name"] for e in meta}
        spans = [e for e in evs if e["ph"] == "X"]
        assert {"setup", "factorize", "solve", "apply",
                "coarse_solve"} == {e["name"] for e in spans}
        # parent linkage survives in args
        cs = next(e for e in spans if e["name"] == "coarse_solve")
        assert cs["args"]["parent"] is not None
        assert doc["otherData"]["counters"] == {"matvecs": 4}
        json.dumps(doc)                     # fully serialisable

    def test_jsonl_lines_parse(self, sample_recorder):
        lines = to_jsonl(sample_recorder).splitlines()
        objs = [json.loads(ln) for ln in lines]
        kinds = [o["type"] for o in objs]
        assert kinds.count("span") == 5
        assert kinds.count("event") == 1
        assert kinds[-2:] == ["counters", "gauges"]

    def test_summary(self, sample_recorder):
        s = summary(sample_recorder)
        assert s["spans"]["apply"]["count"] == 1
        assert s["counters"] == {"matvecs": 4}
        assert s["gauges"] == {"coarse_dim": 8}
        assert s["num_events"] == 1
        json.dumps(s)

    @pytest.mark.parametrize("fmt", ["chrome", "jsonl"])
    def test_round_trip(self, sample_recorder, fmt, tmp_path):
        path = tmp_path / f"trace.{fmt}"
        write_trace(sample_recorder, path, format=fmt)
        trace = load_trace(path)
        assert {s.name for s in trace.spans} == \
            {s.name for s in sample_recorder.spans}
        assert len(trace.events) == 1
        assert trace.counters == {"matvecs": 4}
        assert trace.gauges == {"coarse_dim": 8}
        # span times survive to microsecond precision
        orig = {s.name: s for s in sample_recorder.spans}
        for s in trace.spans:
            assert s.start == pytest.approx(orig[s.name].start, abs=1e-5)
            assert s.duration == pytest.approx(orig[s.name].duration,
                                               abs=1e-5)
        # hierarchy survives: coarse_solve still points at apply
        by_index = {s.index: s for s in trace.spans}
        cs = next(s for s in trace.spans if s.name == "coarse_solve")
        assert by_index[cs.parent].name == "apply"

    def test_unknown_format_rejected(self, sample_recorder, tmp_path):
        with pytest.raises(ValueError):
            write_trace(sample_recorder, tmp_path / "t", format="xml")

    def test_render(self, sample_recorder, tmp_path):
        path = tmp_path / "t.json"
        write_trace(sample_recorder, path)
        out = render_trace(load_trace(path), width=50, max_tracks=4)
        assert "coarse_solve" in out
        assert "phase totals" in out
        assert "matvecs" in out

    def test_render_empty(self):
        from repro.obs import TraceData
        assert "(no spans" in render_trace(TraceData())


class TestAdapters:
    def test_phase_timer_mirrors_spans(self):
        from repro.common.timing import PhaseTimer
        rec = Recorder()
        timer = PhaseTimer(recorder=rec)
        with timer.phase("decomposition"):
            pass
        assert timer.counts["decomposition"] == 1
        assert len(rec.find("decomposition")) == 1

    def test_solve_profiler_mirrors_phases(self):
        from repro.krylov import SolveProfiler
        rec = Recorder()
        prof = SolveProfiler(recorder=rec)
        fn = prof.wrap(lambda x: x + 1, "matvec")
        assert fn(1) == 2
        with prof.phase("apply"):
            with prof.phase("coarse_solve"):
                pass
        assert prof.calls == {"matvec": 1, "apply": 1, "coarse_solve": 1}
        assert rec.nested_within("coarse_solve", "apply")

    def test_timed_map_labels_tasks(self):
        from repro.parallel import ParallelConfig, timed_map
        rec = Recorder()
        out, secs = timed_map(lambda x: x * x, [1, 2, 3],
                              ParallelConfig("threads", workers=2),
                              recorder=rec, label="sq")
        assert out == [1, 4, 9]
        assert len(secs) == 3
        assert sorted(s.name for s in rec.spans) == \
            ["sq[0]", "sq[1]", "sq[2]"]

    def test_meter_feeds_counters(self):
        from repro.mpi import Meter
        rec = Recorder()
        m = Meter(2, recorder=rec)
        m.on_send(0, 80)
        m.on_recv(1, 80)
        m.on_collective(0, "allreduce", 8, is_global_sync=True)
        assert rec.counters["mpi.sends"] == 1
        assert rec.counters["mpi.send_bytes"] == 80
        assert rec.counters["mpi.recvs"] == 1
        assert rec.counters["mpi.collective.allreduce"] == 1
        assert rec.counters["mpi.global_syncs"] == 1
        # per-rank stats unchanged by the adapter
        assert m.stats(0).sends == 1

    def test_run_spmd_records_traffic(self):
        from repro.mpi import run_spmd
        rec = Recorder()

        def fn(comm):
            nxt = (comm.rank + 1) % comm.size
            comm.send(np.arange(4, dtype=np.float64), dest=nxt, tag=0)
            src = (comm.rank - 1) % comm.size
            comm.recv(source=src, tag=0)
            return comm.rank

        out = run_spmd(3, fn, recorder=rec)
        assert out == [0, 1, 2]
        assert rec.counters["mpi.sends"] == 3
        assert rec.counters["mpi.send_bytes"] == 3 * 32


class TestPayloadBytes:
    def test_sparse_matrices_counted_exactly(self):
        from repro.mpi.meter import payload_bytes
        A = sp.random(40, 40, density=0.1, format="csr",
                      random_state=0)
        expected = A.data.nbytes + A.indices.nbytes + A.indptr.nbytes
        assert payload_bytes(A) == expected
        assert payload_bytes(A) > 64           # not the opaque fallback
        coo = A.tocoo()
        assert payload_bytes(coo) == (coo.data.nbytes + coo.row.nbytes
                                      + coo.col.nbytes)

    def test_other_payloads_unchanged(self):
        from repro.mpi.meter import payload_bytes
        assert payload_bytes(None) == 0
        assert payload_bytes(np.zeros(3)) == 24
        assert payload_bytes(b"abcd") == 4
        assert payload_bytes(3.14) == 8
        assert payload_bytes([np.zeros(2), np.zeros(2)]) == 32
        assert payload_bytes(object()) == 64


class TestEndToEnd:
    @pytest.fixture(scope="class")
    def solved(self):
        from repro import SchwarzSolver
        from repro.fem import channels_and_inclusions
        from repro.fem.forms import DiffusionForm
        from repro.mesh import unit_square

        mesh = unit_square(12)
        form = DiffusionForm(degree=1,
                             kappa=channels_and_inclusions(mesh))
        rec = Recorder()
        solver = SchwarzSolver(mesh, form, num_subdomains=4, nev=4,
                               recorder=rec)
        report = solver.solve(tol=1e-8)
        return rec, solver, report

    def test_setup_spans_nest(self, solved):
        rec, _, _ = solved
        for phase in ("decomposition", "factorization", "deflation",
                      "coarse"):
            assert rec.nested_within(phase, "setup")
        assert rec.nested_within("factorize_E", "coarse")
        assert rec.nested_within("geneo[0]", "deflation")

    def test_coarse_solve_nests_inside_apply(self, solved):
        rec, _, _ = solved
        assert rec.nested_within("coarse_solve", "apply")
        assert rec.nested_within("apply", "solution")
        assert rec.nested_within("matvec", "solution")

    def test_iteration_events_match_residuals(self, solved):
        rec, _, report = solved
        assert iteration_residuals(rec) == report.residuals

    def test_counters_and_gauges(self, solved):
        rec, solver, report = solved
        assert rec.counters["coarse_solves"] == solver.coarse.solves
        assert rec.counters["matvecs"] >= report.iterations
        assert rec.gauges["coarse_dim"] == solver.coarse_dim
        assert rec.gauges["iterations"] == report.iterations

    def test_trace_exports_and_renders(self, solved, tmp_path):
        rec, _, _ = solved
        path = tmp_path / "solve.json"
        write_trace(rec, path)
        out = render_trace(load_trace(path))
        assert "coarse_solve" in out and "geneo[0]" in out

    def test_default_solver_stays_uninstrumented(self):
        from repro import SchwarzSolver
        from repro.fem.forms import DiffusionForm
        from repro.mesh import unit_square

        s = SchwarzSolver(unit_square(8), DiffusionForm(degree=1),
                          num_subdomains=2, nev=2)
        assert not s.recorder.enabled
        r = s.solve(tol=1e-8)
        assert r.converged
        assert not s.recorder.spans


class TestCLI:
    def test_solve_telemetry_then_trace(self, tmp_path, capsys):
        from repro.cli import main
        path = tmp_path / "run.json"
        rc = main(["solve", "--problem", "diffusion2d", "--n", "12",
                   "--subdomains", "4", "--nev", "4", "--tol", "1e-8",
                   "--telemetry", str(path)])
        assert rc == 0
        assert path.exists()
        doc = json.loads(path.read_text())
        assert doc["otherData"]["format"] == "repro-telemetry"
        capsys.readouterr()
        assert main(["trace", str(path), "--width", "50"]) == 0
        out = capsys.readouterr().out
        assert "phase totals" in out and "coarse_solve" in out

    def test_solve_telemetry_jsonl(self, tmp_path, capsys):
        from repro.cli import main
        path = tmp_path / "run.jsonl"
        rc = main(["solve", "--problem", "diffusion2d", "--n", "12",
                   "--subdomains", "4", "--nev", "4", "--tol", "1e-8",
                   "--telemetry", str(path),
                   "--telemetry-format", "jsonl"])
        assert rc == 0
        capsys.readouterr()
        assert main(["trace", str(path)]) == 0
        assert "phase totals" in capsys.readouterr().out

    def test_report_and_metrics_subcommands(self, tmp_path, capsys):
        from repro.cli import main
        path = tmp_path / "run.json"
        main(["solve", "--problem", "diffusion2d", "--n", "12",
              "--subdomains", "4", "--nev", "4", "--tol", "1e-8",
              "--telemetry", str(path)])
        capsys.readouterr()
        assert main(["report", str(path)]) == 0
        out = capsys.readouterr().out
        assert "critical path" in out and "convergence" in out
        assert main(["metrics", str(path), "--check"]) == 0
        out = capsys.readouterr().out
        assert out.rstrip().endswith("# EOF")

    def test_regress_selftest(self, tmp_path, capsys):
        import json as _json
        from repro.cli import main
        bench = tmp_path / "BENCH_unit.json"
        bench.write_text(_json.dumps({
            "problem": {"n": 16, "smoke": True},
            "apply_ms": 10.0, "iterations": 12}))
        assert main(["regress", "--selftest", str(bench)]) == 0
        assert "FLAGGED" in capsys.readouterr().out


class TestTraceFidelity:
    """Counters/gauges/events survive both formats bit-for-bit."""

    @pytest.mark.parametrize("fmt", ["chrome", "jsonl"])
    def test_counters_and_gauges_round_trip(self, sample_recorder, fmt,
                                            tmp_path):
        sample_recorder.add("mpi.pair_msgs.0->1", 3)
        sample_recorder.gauge("coarse.dim", 32.5)
        path = tmp_path / f"t.{fmt}"
        write_trace(sample_recorder, path, format=fmt)
        trace = load_trace(path)
        assert trace.counters == sample_recorder.counters
        assert trace.gauges == sample_recorder.gauges

    def test_chrome_without_otherdata_still_loads_counters(
            self, sample_recorder, tmp_path):
        # a trace post-processed by chrome tooling may lose the
        # otherData block; the "C" samples alone must reconstruct
        # counters and gauges
        doc = to_chrome_trace(sample_recorder)
        del doc["otherData"]["counters"]
        del doc["otherData"]["gauges"]
        path = tmp_path / "stripped.json"
        path.write_text(json.dumps(doc))
        trace = load_trace(path)
        assert trace.counters == {"matvecs": 4}
        assert trace.gauges == {"coarse_dim": 8}

    def test_render_shows_counter_and_event_tables(self,
                                                   sample_recorder):
        out = render_trace(sample_recorder)
        assert "counters and gauges" in out
        assert "matvecs" in out and "coarse_dim" in out
        assert "events (1 total)" in out
        assert "iteration" in out


class TestFlightRecorder:
    def test_ring_bounds_spans_and_events(self):
        rec = Recorder(ring=4)
        for i in range(10):
            with rec.span(f"s{i}"):
                pass
            rec.event(f"e{i}")
        assert [s.name for s in rec.spans] == ["s6", "s7", "s8", "s9"]
        assert [e.name for e in rec.events] == ["e6", "e7", "e8", "e9"]
        dump = rec.flight_dump()
        assert dump["ring"] == 4
        assert dump["spans_total"] == 10
        assert dump["events_total"] == 10
        assert len(dump["spans"]) == 4
        json.dumps(dump)                    # serialisable as-is

    def test_unbounded_recorder_dump(self):
        rec = Recorder()
        with rec.span("a"):
            pass
        assert rec.ring is None
        dump = rec.flight_dump()
        assert dump["spans_total"] == 1

    def test_null_recorder_ring_is_none(self):
        assert NULL_RECORDER.ring is None
        assert NULL_RECORDER.flight_dump() == {}

    def test_dump_attached_on_injected_kill(self):
        from repro import SchwarzSolver
        from repro.common.errors import RankFailure
        from repro.fem.forms import DiffusionForm
        from repro.mesh import unit_square
        from repro.resilience import FaultPlan, FaultSpec

        plan = FaultPlan(faults=[FaultSpec(kind="kill", op="local_solve",
                                           rank=1, nth=2)])
        rec = Recorder(ring=32)
        solver = SchwarzSolver(unit_square(10), DiffusionForm(degree=1),
                               num_subdomains=4, nev=2, recorder=rec,
                               faults=plan)
        with pytest.raises(RankFailure) as excinfo:
            solver.solve(tol=1e-8)
        flight = excinfo.value.flight
        assert flight is not None
        assert flight["ring"] == 32
        assert flight["spans"], "black box must carry recent spans"
        assert len(flight["spans"]) <= 32

    def test_dump_lands_in_resilience_report(self):
        from repro import SchwarzSolver
        from repro.fem.forms import DiffusionForm
        from repro.mesh import unit_square
        from repro.resilience import FaultPlan, FaultSpec

        plan = FaultPlan(faults=[FaultSpec(kind="kill", op="local_solve",
                                           rank=1, nth=2)])
        rec = Recorder(ring=32)
        solver = SchwarzSolver(unit_square(10), DiffusionForm(degree=1),
                               num_subdomains=4, nev=2, recorder=rec,
                               faults=plan, recovery="restart")
        report = solver.solve(tol=1e-8)
        assert report.converged
        flight = report.resilience.get("flight_recorder")
        assert flight is not None
        assert flight["ring"] == 32
        # the dump is from the moment of the (recovered) failure
        assert flight["spans_total"] <= rec.flight_dump()["spans_total"]


class TestOverhead:
    def test_disabled_paths_stay_cheap(self):
        # the NullRecorder fast path and the flight ring must both be
        # cheap enough to leave on: generous 5x bound on a hot loop
        # (CI machines are noisy; this guards against accidental
        # O(trace-size) work per operation, not percentage points)
        import timeit

        null = NULL_RECORDER
        ring = Recorder(ring=64)

        def loop(rec):
            for _ in range(200):
                with rec.span("op"):
                    pass
                rec.add("n")

        t_null = min(timeit.repeat(lambda: loop(null), number=5,
                                   repeat=5))
        t_ring = min(timeit.repeat(lambda: loop(ring), number=5,
                                   repeat=5))
        t_base = min(timeit.repeat(lambda: None, number=1000, repeat=5))
        assert t_null < 50 * t_base + 1e-3, \
            "NullRecorder span must be near-free"
        # ring mode does real work but must stay O(1) per span
        assert t_ring < 100 * max(t_null, 1e-6) + 0.05

    def test_ring_memory_stays_bounded(self):
        rec = Recorder(ring=16)
        for i in range(5000):
            with rec.span("s"):
                pass
            rec.event("e")
        assert len(rec.spans) == 16
        assert len(rec.events) == 16
