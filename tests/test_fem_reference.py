"""Unit + property tests for reference elements and quadrature."""

from itertools import product
from math import factorial

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import FEMError
from repro.fem import grundmann_moeller, reference_simplex, simplex_quadrature


def simplex_monomial_integral(exponents, dim):
    """∫_simplex x^e dx = (Π e_i!) / (d + Σ e_i)!"""
    s = sum(exponents)
    num = 1
    for e in exponents:
        num *= factorial(e)
    return num / factorial(dim + s)


class TestQuadrature:
    @pytest.mark.parametrize("dim", [2, 3])
    @pytest.mark.parametrize("degree", range(0, 8))
    def test_exactness(self, dim, degree):
        pts, w = simplex_quadrature(dim, degree)
        for e in product(range(degree + 1), repeat=dim):
            if sum(e) > degree:
                continue
            val = float((w * np.prod(pts ** np.array(e), axis=1)).sum())
            ref = simplex_monomial_integral(e, dim)
            assert val == pytest.approx(ref, rel=1e-12, abs=1e-15)

    @pytest.mark.parametrize("dim", [1, 2, 3])
    def test_weights_sum_to_volume(self, dim):
        _, w = simplex_quadrature(dim, 5)
        assert w.sum() == pytest.approx(1.0 / factorial(dim))

    def test_points_inside_simplex(self):
        pts, _ = grundmann_moeller(3, 3)
        assert np.all(pts >= 0)
        assert np.all(pts.sum(axis=1) <= 1 + 1e-12)

    def test_invalid_args(self):
        with pytest.raises(FEMError):
            simplex_quadrature(2, -1)
        with pytest.raises(FEMError):
            grundmann_moeller(0, 1)
        with pytest.raises(FEMError):
            grundmann_moeller(2, -1)

    @given(st.integers(min_value=0, max_value=6),
           st.integers(min_value=2, max_value=3))
    @settings(max_examples=20, deadline=None)
    def test_gm_rule_cached_and_consistent(self, degree, dim):
        p1, w1 = simplex_quadrature(dim, degree)
        p2, w2 = simplex_quadrature(dim, degree)
        assert p1 is p2 and w1 is w2  # lru_cache returns the same object


class TestReferenceElement:
    @pytest.mark.parametrize("dim,deg", [(2, k) for k in range(1, 5)]
                                        + [(3, k) for k in range(1, 4)])
    def test_kronecker(self, dim, deg):
        ref = reference_simplex(dim, deg)
        V = ref.eval_basis(ref.nodes)
        assert np.allclose(V, np.eye(ref.n_nodes), atol=1e-9)

    @pytest.mark.parametrize("dim,deg", [(2, 3), (3, 2)])
    def test_partition_of_unity(self, dim, deg, rng):
        ref = reference_simplex(dim, deg)
        pts = rng.random((20, dim)) * (1.0 / dim)
        assert np.allclose(ref.eval_basis(pts).sum(axis=1), 1.0)

    @pytest.mark.parametrize("dim,deg", [(2, 2), (2, 4), (3, 2)])
    def test_gradients_sum_to_zero(self, dim, deg, rng):
        ref = reference_simplex(dim, deg)
        pts = rng.random((10, dim)) * (1.0 / dim)
        G = ref.eval_basis_grads(pts)
        assert np.allclose(G.sum(axis=1), 0.0, atol=1e-8)

    def test_gradient_matches_finite_difference(self, rng):
        ref = reference_simplex(2, 3)
        p = np.array([[0.21, 0.34]])
        G = ref.eval_basis_grads(p)[0]
        h = 1e-7
        for d in range(2):
            pp = p.copy()
            pp[0, d] += h
            fd = (ref.eval_basis(pp) - ref.eval_basis(p))[0] / h
            assert np.allclose(G[:, d], fd, atol=1e-5)

    def test_node_counts(self):
        assert reference_simplex(2, 4).n_nodes == 15
        assert reference_simplex(3, 3).n_nodes == 20

    def test_vertices_first(self):
        ref = reference_simplex(2, 3)
        assert np.allclose(ref.nodes[:3], [[0, 0], [1, 0], [0, 1]])

    def test_unsupported_degree(self):
        with pytest.raises(FEMError):
            reference_simplex(3, 4)
        with pytest.raises(FEMError):
            reference_simplex(2, 0)
        with pytest.raises(FEMError):
            reference_simplex(1, 1)
