"""Shared fixtures: small meshes/problems reused across the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.dd import Decomposition, Problem
from repro.fem import channels_and_inclusions, layered_elasticity
from repro.fem.forms import DiffusionForm, ElasticityForm
from repro.mesh import rectangle, unit_cube, unit_square
from repro.partition import partition_mesh


@pytest.fixture(scope="session")
def square16():
    return unit_square(16)


@pytest.fixture(scope="session")
def cube4():
    return unit_cube(4)


@pytest.fixture(scope="session")
def diffusion_problem(square16):
    kappa = channels_and_inclusions(square16, seed=3)
    return Problem(square16, DiffusionForm(degree=2, kappa=kappa))


@pytest.fixture(scope="session")
def diffusion_decomposition(diffusion_problem):
    part = partition_mesh(diffusion_problem.mesh, 6, seed=1)
    return Decomposition(diffusion_problem, part, delta=2)


@pytest.fixture(scope="session")
def elasticity_problem():
    mesh = rectangle(16, 4, x1=4.0)
    lam, mu = layered_elasticity(mesh)
    return Problem(mesh, ElasticityForm(degree=2, lam=lam, mu=mu),
                   dirichlet=lambda x: x[:, 0] < 1e-9)


@pytest.fixture(scope="session")
def elasticity_decomposition(elasticity_problem):
    part = partition_mesh(elasticity_problem.mesh, 4, seed=0)
    return Decomposition(elasticity_problem, part, delta=1)


@pytest.fixture
def rng():
    return np.random.default_rng(1234)
