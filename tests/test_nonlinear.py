"""Tests for the Picard nonlinear solver."""

import numpy as np
import pytest

from repro.common.errors import ReproError
from repro.mesh import unit_square
from repro.nonlinear import PicardSolver


def linear_kappa(u_cells, c):
    """Solution-independent: Picard must converge in exactly 2 steps
    (second step reproduces the first solve)."""
    return np.ones(len(c))


def mild_kappa(u_cells, c):
    return 1.0 + 10.0 * u_cells ** 2


def contrast_kappa(u_cells, c):
    base = np.where(np.abs(c[:, 1] - 0.5) < 0.1, 1e3, 1.0)
    return base * (1.0 + 20.0 * u_cells ** 2)


@pytest.fixture(scope="module")
def mesh():
    return unit_square(16)


class TestPicard:
    def test_linear_problem_two_steps(self, mesh):
        solver = PicardSolver(mesh, linear_kappa, f=1.0,
                              num_subdomains=4, nev=4)
        rep = solver.solve(picard_tol=1e-10, max_picard=5)
        assert rep.converged
        assert rep.picard_iterations == 2
        assert rep.updates[-1] < 1e-10

    def test_nonlinear_converges(self, mesh):
        solver = PicardSolver(mesh, mild_kappa, f=10.0,
                              num_subdomains=4, nev=4)
        rep = solver.solve(picard_tol=1e-8, max_picard=40)
        assert rep.converged
        assert rep.picard_iterations > 2
        # updates decrease monotonically (contraction)
        ups = rep.updates
        assert ups[-1] < ups[0]

    def test_solution_satisfies_fixed_point(self, mesh):
        """Re-solving with the converged coefficient reproduces x."""
        solver = PicardSolver(mesh, mild_kappa, f=10.0,
                              num_subdomains=4, nev=4)
        rep = solver.solve(picard_tol=1e-10, max_picard=50)
        from repro import SchwarzSolver
        from repro.fem.forms import DiffusionForm
        u_cells = rep.x[:mesh.num_vertices][mesh.cells].mean(axis=1)
        kap = mild_kappa(u_cells, mesh.cell_centroids())
        lin = SchwarzSolver(mesh, DiffusionForm(degree=2, kappa=kap,
                                                f=10.0),
                            num_subdomains=4, nev=4)
        ref = lin.solve(tol=1e-10, maxiter=400)
        err = np.linalg.norm(rep.x - ref.x) / np.linalg.norm(ref.x)
        assert err < 1e-6

    @pytest.mark.parametrize("strategy", ["rebuild", "reuse", "freeze"])
    def test_coarse_strategies_agree(self, mesh, strategy):
        solver = PicardSolver(mesh, contrast_kappa, f=5.0,
                              num_subdomains=4, nev=6, coarse=strategy)
        rep = solver.solve(picard_tol=1e-8, max_picard=40)
        assert rep.converged
        assert np.isfinite(rep.x).all()

    def test_reuse_skips_eigensolves(self, mesh):
        reb = PicardSolver(mesh, mild_kappa, f=10.0, num_subdomains=4,
                           nev=4, coarse="rebuild")
        r1 = reb.solve(picard_tol=1e-8, max_picard=40)
        reu = PicardSolver(mesh, mild_kappa, f=10.0, num_subdomains=4,
                           nev=4, coarse="reuse")
        r2 = reu.solve(picard_tol=1e-8, max_picard=40)
        # rebuild pays #picard-many deflation phases, reuse pays one
        assert r1.timer.counts["deflation"] == r1.picard_iterations
        assert r2.timer.counts["deflation"] == 1
        # same fixed point
        assert np.allclose(r1.x, r2.x, atol=1e-5 * abs(r1.x).max())

    def test_not_converged_flag(self, mesh):
        solver = PicardSolver(mesh, mild_kappa, f=10.0,
                              num_subdomains=4, nev=4)
        rep = solver.solve(picard_tol=1e-14, max_picard=2)
        assert not rep.converged

    def test_errors(self, mesh):
        with pytest.raises(ReproError):
            PicardSolver(mesh, mild_kappa, coarse="adaptive")
        bad = PicardSolver(mesh, lambda u, c: np.ones(3),
                           num_subdomains=4)
        with pytest.raises(ReproError):
            bad.solve(max_picard=1)
        neg = PicardSolver(mesh, lambda u, c: -np.ones(len(c)),
                           num_subdomains=4)
        with pytest.raises(ReproError):
            neg.solve(max_picard=1)
