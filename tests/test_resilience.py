"""Resilience subsystem: fault injection, health monitoring, recovery.

Covers the fault-plan declarative layer (round-trip, validation, seeded
replay determinism), the simulated-MPI fault hooks (drop/corrupt/kill
surface as typed :class:`RankFailure`, never a hang), the per-iteration
:class:`HealthMonitor` classification, the typed Krylov breakdown state
(last healthy iterate + residual history + profile), and the
fault-matrix acceptance grid: every fault kind × every recovery mode on
a real two-level solve.
"""

from __future__ import annotations

import json
import time
import warnings

import numpy as np
import pytest

from repro import FaultPlan, FaultSpec, HealthMonitor, SchwarzSolver
from repro.common.errors import (
    CoarseSolveError,
    ConvergenceError,
    DivergenceError,
    IndefiniteError,
    KrylovBreakdown,
    KrylovError,
    NonFiniteError,
    RankFailure,
    ReproError,
    StagnationError,
)
from repro.fem import channels_and_inclusions
from repro.fem.forms import DiffusionForm
from repro.krylov import cg, deflated_cg, gmres
from repro.mesh import unit_square
from repro.mpi.meter import Meter
from repro.mpi.simmpi import run_spmd
from repro.resilience import DROP, FaultInjector, RecoveryPolicy, \
    as_injector, resolve_recovery


# ----------------------------------------------------------------------
# FaultPlan / FaultSpec declarative layer
# ----------------------------------------------------------------------

class TestFaultPlan:
    def test_json_round_trip(self, tmp_path):
        plan = FaultPlan(
            [FaultSpec("drop", "send", rank=1, nth=2),
             FaultSpec("corrupt", "recv", scale=1e3),
             FaultSpec("delay", "allreduce", delay=0.5),
             FaultSpec("kill", "iteration", rank=0, nth=7,
                       persistent=True),
             FaultSpec("nan", "local_solve", rank=3)],
            seed=99, timeout=5.0)
        path = tmp_path / "plan.json"
        plan.save(str(path))
        back = FaultPlan.load(str(path))
        assert back == plan

    def test_unknown_kind_rejected(self):
        with pytest.raises(ReproError, match="unknown fault kind"):
            FaultSpec("explode", "send")

    def test_drop_only_on_send(self):
        with pytest.raises(ReproError, match="only applies"):
            FaultSpec("drop", "recv")

    def test_negative_nth_rejected(self):
        with pytest.raises(ReproError, match="nth"):
            FaultSpec("kill", "send", nth=-1)

    def test_unknown_field_rejected(self):
        with pytest.raises(ReproError, match="unknown fault-spec"):
            FaultSpec.from_dict({"kind": "kill", "op": "send",
                                 "severity": "high"})

    def test_plan_must_have_faults_list(self):
        with pytest.raises(ReproError, match="faults"):
            FaultPlan.from_json(json.dumps({"seed": 1}))

    def test_as_injector_coercions(self, tmp_path):
        assert as_injector(None) is None
        plan = FaultPlan([], seed=1)
        inj = as_injector(plan)
        assert isinstance(inj, FaultInjector)
        assert as_injector(inj) is inj
        path = tmp_path / "p.json"
        plan.save(str(path))
        assert as_injector(str(path)).plan == plan
        with pytest.raises(ReproError):
            as_injector(42)


class TestFaultInjector:
    def test_nth_call_counting(self):
        inj = FaultInjector(FaultPlan([FaultSpec("kill", "op", nth=2)]))
        inj.fire("op", 0)
        inj.fire("op", 0)
        with pytest.raises(RankFailure):
            inj.fire("op", 0)
        # non-persistent: fires exactly once
        inj.fire("op", 0)
        assert inj.summary() == {"kill": 1}

    def test_persistent_keeps_firing(self):
        inj = FaultInjector(FaultPlan(
            [FaultSpec("nan", "op", nth=1, persistent=True)]))
        assert not np.isnan(inj.fire("op", 0, np.ones(4))).any()
        for _ in range(3):
            assert np.isnan(inj.fire("op", 0, np.ones(4))).sum() == 1
        assert inj.summary() == {"nan": 3}

    def test_rank_filter_and_any_rank(self):
        inj = FaultInjector(FaultPlan([FaultSpec("kill", "op", rank=2)]))
        inj.fire("op", 0)
        inj.fire("op", 1)
        with pytest.raises(RankFailure) as ei:
            inj.fire("op", 2)
        assert ei.value.rank == 2
        assert ei.value.op == "op"

    def test_corrupt_scales_one_entry(self):
        inj = FaultInjector(FaultPlan(
            [FaultSpec("corrupt", "op", scale=1e6)], seed=5))
        out = inj.fire("op", 0, np.ones(16))
        assert (np.abs(out) > 1e5).sum() == 1
        assert (out == 1.0).sum() == 15

    def test_poison_copies_payload(self):
        inj = FaultInjector(FaultPlan([FaultSpec("nan", "op")]))
        payload = np.ones(4)
        out = inj.fire("op", 0, payload)
        assert np.isnan(out).sum() == 1
        assert not np.isnan(payload).any()      # original untouched

    def test_non_float_payload_unpoisonable(self):
        inj = FaultInjector(FaultPlan([FaultSpec("nan", "op",
                                                 persistent=True)]))
        assert inj.fire("op", 0, "hello") == "hello"
        assert inj.fire("op", 0, np.arange(3)) is not DROP

    def test_seeded_replay_determinism(self):
        def run():
            inj = FaultInjector(FaultPlan(
                [FaultSpec("corrupt", "a", nth=1, persistent=True),
                 FaultSpec("nan", "b", nth=0)], seed=11))
            outs = []
            for k in range(4):
                outs.append(inj.fire("a", 0, np.ones(8)))
                outs.append(inj.fire("b", 1, np.ones(8)))
            return outs, inj.summary()
        o1, s1 = run()
        o2, s2 = run()
        assert s1 == s2
        for a, b in zip(o1, o2):
            np.testing.assert_array_equal(a, b)

    def test_reset_replays_identically(self):
        inj = FaultInjector(FaultPlan(
            [FaultSpec("corrupt", "op", persistent=True)], seed=3))
        first = [inj.fire("op", 0, np.ones(6)) for _ in range(3)]
        inj.reset()
        second = [inj.fire("op", 0, np.ones(6)) for _ in range(3)]
        for a, b in zip(first, second):
            np.testing.assert_array_equal(a, b)

    def test_meter_records_faults(self):
        m = Meter(2)
        inj = FaultInjector(FaultPlan(
            [FaultSpec("delay", "send", rank=1, delay=0.0)]), meter=m)
        inj.fire("send", 1, b"x")
        assert m.stats(1).faults == {"delay": 1}
        assert m.total_faults() == 1
        assert m.summary()["faults"] == 1


# ----------------------------------------------------------------------
# Simulated-MPI fault hooks: typed failures, never hangs
# ----------------------------------------------------------------------

class TestSimMpiFaults:
    def test_dropped_send_times_out_typed(self):
        plan = FaultPlan([FaultSpec("drop", "send", rank=0)], timeout=1.0)

        def pingpong(comm):
            if comm.rank == 0:
                comm.send(np.arange(3.0), 1, tag=5)
                return None
            return comm.recv(0, tag=5)

        t0 = time.monotonic()
        with pytest.raises(RankFailure) as ei:
            run_spmd(2, pingpong, faults=plan)
        assert time.monotonic() - t0 < 10.0     # bounded, no deadlock
        assert ei.value.op == "recv"

    def test_corrupted_message_is_deterministic(self):
        def exchange(comm):
            if comm.rank == 0:
                comm.send(np.ones(8), 1, tag=1)
                return None
            return comm.recv(0, tag=1)

        outs = []
        for _ in range(2):
            plan = FaultPlan([FaultSpec("corrupt", "send", rank=0)],
                             seed=42)
            outs.append(run_spmd(2, exchange, faults=plan)[1])
        np.testing.assert_array_equal(outs[0], outs[1])
        assert np.abs(outs[0]).max() > 1e5

    def test_killed_rank_unblocks_collective_peers(self):
        plan = FaultPlan([FaultSpec("kill", "allreduce", rank=1, nth=2)],
                         timeout=2.0)

        def loop(comm):
            x = 1.0
            for _ in range(10):
                x = comm.allreduce(x) / comm.size
            return x

        t0 = time.monotonic()
        with pytest.raises(RankFailure):
            run_spmd(3, loop, faults=plan)
        assert time.monotonic() - t0 < 10.0

    def test_killed_rank_unblocks_blocked_receiver(self):
        # satellite: the mailbox busy-wait honours the error box while
        # polling — the survivor must raise within ~_ERR_POLL of the
        # peer's death, long before its own recv deadline
        plan = FaultPlan([FaultSpec("kill", "barrier", rank=0)],
                         timeout=30.0)

        def main(comm):
            if comm.rank == 0:
                comm.barrier()          # killed here, never sends
                comm.send(np.ones(1), 1)
            else:
                return comm.recv(0)     # would wait 30 s on its own

        t0 = time.monotonic()
        with pytest.raises(RankFailure):
            run_spmd(2, main, faults=plan)
        assert time.monotonic() - t0 < 5.0

    def test_delay_fault_slows_but_completes(self):
        plan = FaultPlan([FaultSpec("delay", "send", rank=0,
                                    delay=0.2)])

        def pingpong(comm):
            if comm.rank == 0:
                comm.send(np.ones(2), 1)
                return None
            return comm.recv(0)

        t0 = time.monotonic()
        res = run_spmd(2, pingpong, faults=plan)
        assert time.monotonic() - t0 >= 0.2
        np.testing.assert_array_equal(res[1], np.ones(2))

    def test_injector_propagates_to_split_comms(self):
        plan = FaultPlan([FaultSpec("kill", "bcast", rank=1)],
                         timeout=2.0)

        def main(comm):
            sub = comm.split(comm.rank % 2)
            return sub.bcast(comm.rank, root=0)

        with pytest.raises(RankFailure):
            run_spmd(2, main, faults=plan)

    def test_no_faults_unchanged(self):
        def main(comm):
            return comm.allreduce(comm.rank)

        assert run_spmd(3, main) == [3, 3, 3]


# ----------------------------------------------------------------------
# HealthMonitor
# ----------------------------------------------------------------------

class TestHealthMonitor:
    def test_nan_residual_raises_nonfinite(self):
        h = HealthMonitor()
        h.observe(0, 1.0)
        with pytest.raises(NonFiniteError):
            h.observe(1, float("nan"))
        assert h.breakdowns == ["nonfinite"]

    def test_nan_iterate_raises_nonfinite(self):
        h = HealthMonitor()
        with pytest.raises(NonFiniteError):
            h.observe(0, 1.0, np.array([1.0, np.nan]))

    def test_divergence_ratio(self):
        h = HealthMonitor(divergence_ratio=100.0)
        h.observe(0, 1.0)
        h.observe(1, 50.0)
        with pytest.raises(DivergenceError):
            h.observe(2, 150.0)

    def test_stagnation_window(self):
        h = HealthMonitor(stagnation_window=3)
        h.observe(0, 1.0)
        with pytest.raises(StagnationError):
            for k in range(1, 10):
                h.observe(k, 1.0)

    def test_checkpoint_is_rollback_target(self):
        h = HealthMonitor(checkpoint_every=2)
        xs = [np.full(3, float(k)) for k in range(6)]
        for k in range(5):
            h.observe(k, 1.0 / (k + 1), xs[k])
        with pytest.raises(NonFiniteError) as ei:
            h.observe(5, float("nan"), xs[5])
        exc = ei.value
        # the attached x is a healthy checkpoint, not the poisoned state
        assert exc.x is not None
        assert np.all(np.isfinite(exc.x))
        assert exc.iteration < 5
        assert len(exc.residuals) == 6

    def test_orthogonality_defect(self):
        h = HealthMonitor(orthogonality_tol=1e-3)
        h.orthogonality(4, 1e-5)               # fine
        with pytest.raises(KrylovError):
            h.orthogonality(5, 0.5)

    def test_iteration_tick_fires_injector(self):
        inj = FaultInjector(FaultPlan(
            [FaultSpec("kill", "iteration", nth=3)]))
        h = HealthMonitor(injector=inj)
        for k in range(3):
            h.observe(k, 1.0)
        with pytest.raises(RankFailure):
            h.observe(3, 1.0)


# ----------------------------------------------------------------------
# Typed Krylov breakdowns carry state (satellites 1 & 3)
# ----------------------------------------------------------------------

class TestBreakdownState:
    def test_cg_indefinite_carries_state(self):
        A = np.diag([1.0, -1.0, 2.0])          # indefinite
        b = np.ones(3)
        with pytest.raises(IndefiniteError) as ei:
            cg(A, b, tol=1e-10, maxiter=50)
        exc = ei.value
        assert exc.x is not None and exc.x.shape == (3,)
        assert np.all(np.isfinite(exc.x))
        assert len(exc.residuals) >= 1
        assert isinstance(exc.profile, dict)
        assert isinstance(exc, KrylovBreakdown)
        assert isinstance(exc, KrylovError)    # old handlers still catch

    def test_deflated_cg_breakdown_carries_state(self):
        A = np.diag([1.0, 1.0, -4.0, 2.0])
        Z = np.eye(4)[:, :1]
        with pytest.raises(IndefiniteError) as ei:
            deflated_cg(A, np.ones(4), Z, tol=1e-12, maxiter=50)
        exc = ei.value
        assert exc.x is not None and exc.x.shape == (4,)
        assert len(exc.residuals) >= 1
        assert isinstance(exc.profile, dict)

    def test_gmres_stall_convergence_error_has_profile(self):
        rng = np.random.default_rng(0)
        Q, _ = np.linalg.qr(rng.standard_normal((30, 30)))
        A = Q @ np.diag(np.linspace(1e-8, 1.0, 30)) @ Q.T
        with pytest.raises(ConvergenceError) as ei:
            gmres(A, np.ones(30), tol=1e-14, restart=5, maxiter=8,
                  raise_on_stall=True)
        exc = ei.value
        assert isinstance(exc.profile, dict)
        assert "matvec" in exc.profile
        assert exc.x is not None
        assert len(exc.residuals) >= 1

    def test_gmres_health_nan_carries_profile(self):
        calls = {"n": 0}

        diag = np.linspace(1.0, 2.0, 8)

        def bad_op(v):
            calls["n"] += 1
            out = diag * v
            if calls["n"] == 4:
                out[0] = np.nan
            return out

        h = HealthMonitor()
        with pytest.raises(NonFiniteError) as ei:
            gmres(bad_op, np.ones(8), tol=1e-12, restart=4, maxiter=20,
                  health=h)
        assert isinstance(ei.value.profile, dict)


# ----------------------------------------------------------------------
# Recovery policies
# ----------------------------------------------------------------------

class TestRecoveryPolicy:
    def test_resolve(self):
        assert resolve_recovery(None).mode == "off"
        assert resolve_recovery("degrade").degrading
        p = RecoveryPolicy(mode="restart", max_restarts=5)
        assert resolve_recovery(p) is p
        with pytest.raises(ReproError):
            resolve_recovery("retry-forever")
        with pytest.raises(ReproError):
            RecoveryPolicy(mode="panic")
        with pytest.raises(ReproError):
            RecoveryPolicy(max_restarts=-1)

    def test_active_flags(self):
        assert not RecoveryPolicy().active
        assert RecoveryPolicy(mode="restart").active
        assert not RecoveryPolicy(mode="restart").degrading
        assert RecoveryPolicy(mode="degrade").degrading


# ----------------------------------------------------------------------
# Fault-matrix acceptance on the real two-level solver
# ----------------------------------------------------------------------

def _small_solver(faults=None, recovery=None, recorder=None, **kw):
    mesh = unit_square(12)
    form = DiffusionForm(degree=1,
                         kappa=channels_and_inclusions(mesh, seed=3))
    kw.setdefault("num_subdomains", 4)
    kw.setdefault("nev", 4)
    return SchwarzSolver(mesh, form, faults=faults, recovery=recovery,
                         recorder=recorder, **kw)


FAULT_CASES = {
    "nan_local_solve": FaultPlan(
        [FaultSpec("nan", "local_solve", rank=1, nth=3)]),
    "kill_subdomain": FaultPlan(
        [FaultSpec("kill", "local_solve", rank=2, nth=4)]),
    "kill_subdomain_persistent": FaultPlan(
        [FaultSpec("kill", "local_solve", rank=2, nth=4,
                   persistent=True)]),
    "corrupt_coarse": FaultPlan(
        [FaultSpec("corrupt", "coarse_solve", nth=2, scale=np.inf)]),
}


class TestFaultMatrix:
    @pytest.mark.parametrize("case", sorted(FAULT_CASES))
    def test_recovery_off_raises_typed(self, case):
        solver = _small_solver(faults=FAULT_CASES[case])
        with pytest.raises((KrylovBreakdown, RankFailure,
                            CoarseSolveError)) as ei:
            solver.solve(tol=1e-8)
        # never a bare/untypable failure: the solver's own hierarchy
        assert isinstance(ei.value, ReproError)

    @pytest.mark.parametrize("case", ["nan_local_solve",
                                      "kill_subdomain"])
    def test_recovery_restart_survives_transients(self, case):
        solver = _small_solver(faults=FAULT_CASES[case],
                               recovery="restart")
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            report = solver.solve(tol=1e-8)
        assert report.converged
        assert report.resilience["restarts"] >= 1
        assert sum(report.resilience["faults"].values()) >= 1

    @pytest.mark.parametrize("case", sorted(FAULT_CASES))
    def test_recovery_degrade_always_completes(self, case):
        solver = _small_solver(faults=FAULT_CASES[case],
                               recovery="degrade")
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            report = solver.solve(tol=1e-8)
        assert report.converged
        assert report.resilience["mode"] == "degrade"

    def test_persistent_kill_requires_degrade(self):
        solver = _small_solver(
            faults=FAULT_CASES["kill_subdomain_persistent"],
            recovery=RecoveryPolicy(mode="restart", max_restarts=2))
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            with pytest.raises(RankFailure):
                solver.solve(tol=1e-8)

    def test_giveup_emits_event_and_counts(self):
        # restart budget exhausted: the terminal give-up must be
        # observable — a recovery.giveup event, a resilience["giveup"]
        # count, and the state attached to the raised exception
        from repro.obs import Recorder
        recorder = Recorder()
        solver = _small_solver(
            faults=FAULT_CASES["kill_subdomain_persistent"],
            recovery=RecoveryPolicy(mode="restart", max_restarts=2),
            recorder=recorder)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            with pytest.raises(RankFailure) as ei:
                solver.solve(tol=1e-8)
        res = ei.value.resilience
        assert res["giveup"] == 1
        assert res["restarts"] == 2
        giveups = [e for e in recorder.events
                   if e.name == "recovery.giveup"]
        assert len(giveups) == 1
        assert giveups[0].attrs["reason"] == "RankFailure"
        assert giveups[0].attrs["restarts"] == 2

    def test_degrade_disables_killed_subdomain(self):
        # degrade_sticky=True opts into keeping the degraded
        # configuration alive after the solve (lost-rank scenario)
        solver = _small_solver(
            faults=FAULT_CASES["kill_subdomain_persistent"],
            recovery="degrade")
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            report = solver.solve(tol=1e-8, degrade_sticky=True)
        assert report.converged
        assert report.resilience["degraded_subdomains"] == [2]
        assert 2 in solver.one_level.disabled

    def test_degrade_state_restored_after_solve(self):
        # regression: degrade-mode measures used to persist — a healthy
        # re-solve after the fault plan was exhausted still ran with the
        # subdomain disabled (and, for coarse faults, one-level only)
        baseline = _small_solver().solve(tol=1e-8)
        solver = _small_solver(faults=FAULT_CASES["kill_subdomain"],
                               recovery="degrade")
        pre = solver.preconditioner
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            faulted = solver.solve(tol=1e-8)
        assert faulted.converged
        assert faulted.resilience["degraded_subdomains"] == [2]
        assert solver.one_level.disabled == set()
        assert solver.preconditioner is pre
        # the (transient, now exhausted) fault is done: a clean solve
        # must match the never-faulted iteration count exactly
        clean = solver.solve(tol=1e-8)
        assert clean.iterations == baseline.iterations

    def test_one_level_fallback_restored_after_solve(self):
        # the coarse-failure path swaps self.preconditioner to the
        # one-level method mid-solve; that swap must not outlive solve()
        plan = FaultPlan([FaultSpec("nan", "coarse_solve", nth=1,
                                    persistent=True)])
        solver = _small_solver(faults=plan, recovery="degrade")
        pre = solver.preconditioner
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            report = solver.solve(tol=1e-8)
        assert report.converged
        assert report.resilience["one_level_only"]
        assert solver.preconditioner is pre

    def test_eigensolve_fault_off_raises(self):
        plan = FaultPlan([FaultSpec("kill", "eigensolve", rank=1)])
        with pytest.raises(RankFailure):
            _small_solver(faults=plan)

    def test_eigensolve_fault_degrades_to_nicolaides(self):
        plan = FaultPlan([FaultSpec("kill", "eigensolve", rank=1,
                                    persistent=True)])
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            solver = _small_solver(faults=plan, recovery="degrade")
            report = solver.solve(tol=1e-8)
        assert report.converged
        assert solver.eigensolve_fallbacks == [1]
        assert report.resilience["eigensolve_fallbacks"] == [1]

    def test_singular_coarse_falls_back_then_one_level(self):
        plan = FaultPlan([FaultSpec("nan", "coarse_solve", nth=1,
                                    persistent=True)])
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            solver = _small_solver(faults=plan, recovery="degrade")
            report = solver.solve(tol=1e-8)
        assert report.converged
        assert report.resilience["coarse_fallbacks"] >= 1
        assert report.resilience["one_level_only"]

    def test_cg_path_recovers_too(self):
        plan = FaultPlan([FaultSpec("nan", "local_solve", rank=0,
                                    nth=2)])
        solver = _small_solver(faults=plan, recovery="restart",
                               preconditioner="bnn", krylov="cg")
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            report = solver.solve(tol=1e-8)
        assert report.converged
        assert report.resilience["restarts"] >= 1

    def test_faulted_result_matches_clean_solve(self):
        clean = _small_solver().solve(tol=1e-10)
        plan = FaultPlan([FaultSpec("nan", "local_solve", rank=1,
                                    nth=3)])
        solver = _small_solver(faults=plan, recovery="restart")
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            report = solver.solve(tol=1e-10)
        assert report.converged
        err = (np.linalg.norm(report.x - clean.x)
               / np.linalg.norm(clean.x))
        assert err < 1e-3


# ----------------------------------------------------------------------
# Acceptance: the issue's seeded kill + poison plan, trace events
# ----------------------------------------------------------------------

class TestAcceptance:
    PLAN = [FaultSpec("kill", "local_solve", rank=2, nth=5),
            FaultSpec("nan", "local_solve", rank=0, nth=2)]

    @pytest.mark.parametrize("mode", ["restart", "degrade"])
    def test_kill_plus_poison_completes(self, mode):
        from repro.obs import Recorder
        rec = Recorder()
        solver = _small_solver(faults=FaultPlan(list(self.PLAN), seed=7),
                               recovery=mode, recorder=rec)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            report = solver.solve(tol=1e-8)
        assert report.converged
        assert report.resilience["restarts"] >= 1
        assert report.resilience["faults"] == {"kill": 1, "nan": 1}
        events = [e.name for e in rec.events]
        assert "recovery.restart" in events
        assert any(e.startswith("fault") for e in events)

    def test_off_raises_typed_not_nan(self):
        solver = _small_solver(faults=FaultPlan(list(self.PLAN), seed=7))
        with pytest.raises((KrylovBreakdown, RankFailure)):
            solver.solve(tol=1e-8)

    def test_trace_exports_recovery_events(self, tmp_path):
        from repro.obs import Recorder, load_trace, write_trace
        rec = Recorder()
        solver = _small_solver(faults=FaultPlan(list(self.PLAN), seed=7),
                               recovery="degrade", recorder=rec)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            report = solver.solve(tol=1e-8)
        assert report.converged
        path = tmp_path / "trace.json"
        write_trace(rec, str(path), format="chrome")
        trace = load_trace(str(path))
        names = {e.name for e in trace.events}
        assert any(n.startswith("recovery.") for n in names)


# ----------------------------------------------------------------------
# CLI integration
# ----------------------------------------------------------------------

class TestCli:
    def test_solve_with_faults_and_recovery(self, tmp_path, capsys):
        from repro.cli import main
        plan = FaultPlan([FaultSpec("nan", "local_solve", rank=1,
                                    nth=3)])
        plan_path = tmp_path / "plan.json"
        plan.save(str(plan_path))
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            rc = main(["solve", "--problem", "diffusion2d", "--n", "12",
                       "--subdomains", "4", "--nev", "4",
                       "--degree", "1",
                       "--faults", str(plan_path),
                       "--recovery", "degrade"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "recovery mode" in out
        assert "faults injected" in out
