"""Fault-tolerant SPMD solves: communicator repair, neighbor
checkpointing, retry absorption, and the chaos harness.

Covers the ULFM-style primitives (``agree`` / ``shrink`` / ``repair``
with warm-spare substitution), the recovery paths of
:func:`repro.core.spmd_ft.solve_spmd_ft` (checkpoint restore,
partition-of-unity reconstruction, setup redo, double failures,
out-of-spares, give-up), transient-drop absorption via sender-side
retry, seeded fault-replay determinism, and the chaos campaign
machinery.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.common.errors import CommunicatorError, RankFailure
from repro.core import solve_spmd_ft
from repro.core.spmd import solve_spmd
from repro.mpi.meter import Meter
from repro.mpi.simmpi import run_spmd
from repro.obs import Recorder
from repro.resilience import (ChaosConfig, FaultPlan, FaultSpec,
                              RetryPolicy, as_retry, build_problem,
                              partner_map, random_plan, run_campaign)
from repro.resilience.chaos import run_solve
from repro.resilience.checkpoint import JacobiFactor, jacobi_surrogate


@pytest.fixture(scope="module")
def ft_problem():
    """Small 6-subdomain heterogeneous diffusion problem, built once."""
    return build_problem(ChaosConfig(nranks=6, mesh_n=12, nev=2))


def ft_solve(ft_problem, **kw):
    dec, space, b = ft_problem
    kw.setdefault("num_masters", 2)
    kw.setdefault("tol", 1e-6)
    kw.setdefault("restart", 30)
    kw.setdefault("maxiter", 120)
    return solve_spmd_ft(dec, space, b, **kw)


def kill_plan(rank, nth=5, op="iteration", timeout=2.0):
    return FaultPlan([FaultSpec("kill", op, rank=rank, nth=nth)],
                     seed=7, timeout=timeout)


# ----------------------------------------------------------------------
# ULFM-style primitives on the raw simulated communicator
# ----------------------------------------------------------------------

class TestRepairPrimitives:
    def test_agree_and(self):
        def fn(comm):
            return comm.agree(int(comm.world_rank != 1))

        out = run_spmd(4, fn, ft=True)
        assert out == [0, 0, 0, 0]

    def test_agree_min(self):
        def fn(comm):
            return comm.agree(comm.world_rank + 10, op="min")

        assert run_spmd(3, fn, ft=True) == [10, 10, 10]

    def test_shrink_without_deaths_is_identity(self):
        def fn(comm):
            sub = comm.shrink()
            return (sub.size, sub.rank, sub.allgather(comm.world_rank))

        out = run_spmd(3, fn, ft=True)
        assert all(size == 3 and ranks == [0, 1, 2]
                   for size, _, ranks in out)

    def test_repair_substitutes_spare(self):
        def fn(comm):
            if not comm.adopted:
                if comm.world_rank == 1:
                    raise RankFailure("injected", rank=comm.world_rank,
                                      op="test")
                # survivors: the broken barrier surfaces the death, the
                # repair substitutes the spare; the substitute skips
                # straight to the post-repair collective
                try:
                    comm.barrier()
                except RankFailure:
                    plan = comm.repair()
                    assert plan["dead"] == [1]
                    assert list(plan["replaced"]) == [1]
            return (comm.world_rank, comm.adopted,
                    comm.allgather(comm.world_rank))

        out = run_spmd(3, fn, spares=1)
        assert out[1] is not None and out[1][1]          # spare adopted 1
        assert all(r[2] == [0, 1, 2] for r in out if r)

    def test_repair_without_spares_fails_cleanly(self):
        def fn(comm):
            if comm.world_rank == 1 and not comm.adopted:
                raise RankFailure("injected", rank=comm.world_rank,
                                  op="test")
            try:
                comm.barrier()
            except RankFailure:
                comm.repair()
            return comm.world_rank

        with pytest.raises(RankFailure, match="repair failed"):
            run_spmd(3, fn, spares=0, ft=True)

    def test_ft_requires_enabled(self):
        def fn(comm):
            return comm.agree(1)

        with pytest.raises(CommunicatorError, match="fault-toleran"):
            run_spmd(2, fn)

    def test_poll_interval_must_be_positive(self):
        with pytest.raises(CommunicatorError, match="poll_interval"):
            run_spmd(2, lambda comm: None, poll_interval=0.0)

    def test_plan_timeout_validated_against_poll(self):
        plan = FaultPlan([FaultSpec("drop", "send", rank=0)],
                         timeout=0.05)
        with pytest.raises(CommunicatorError, match="timeout"):
            run_spmd(2, lambda comm: None, faults=plan,
                     poll_interval=0.5)

    def test_custom_poll_interval_works(self):
        out = run_spmd(2, lambda comm: comm.allreduce(1),
                       poll_interval=0.001)
        assert out == [2, 2]


# ----------------------------------------------------------------------
# Fault-tolerant solve: recovery paths
# ----------------------------------------------------------------------

class TestFtSolve:
    def test_fault_free_matches_plain_spmd(self, ft_problem):
        dec, space, b = ft_problem
        x_ref, it_ref, res_ref, _ = solve_spmd(
            dec, space, b, num_masters=2, tol=1e-6, restart=30,
            maxiter=120)
        rep = ft_solve(ft_problem, spares=1)
        assert rep.converged and rep.two_level
        assert not rep.recoveries
        assert rep.iterations == it_ref
        assert np.allclose(rep.x, x_ref)
        assert rep.checkpoint_ticks > 0

    def test_kill_restores_from_checkpoint(self, ft_problem):
        meter = Meter(6)
        rep = ft_solve(ft_problem, spares=1, faults=kill_plan(3),
                       meter=meter)
        assert rep.converged and rep.two_level
        assert len(rep.recoveries) == 1
        rec = rep.recoveries[0]
        assert rec["dead"] == [3] and list(rec["replaced"]) == [3]
        assert 3 in rec["restored_from_ckpt"]
        assert not rec["degraded_local"]
        assert meter.rank_deaths == 1
        assert meter.repairs == 1 and meter.ranks_replaced == 1
        assert meter.faults_by_kind() == {"kill": 1}

    def test_kill_master_keeps_two_level(self, ft_problem):
        # rank 0 is a coarse master: its replica must carry the coarse
        # factor rows so the substitute rejoins the two-level solve
        rep = ft_solve(ft_problem, spares=1, faults=kill_plan(0))
        assert rep.converged and rep.two_level
        assert rep.recoveries[0]["restored_from_ckpt"] == [0]

    def test_kill_without_checkpoint_uses_pou(self, ft_problem):
        rep = ft_solve(ft_problem, spares=1, checkpoint_every=0,
                       faults=kill_plan(3))
        assert rep.converged
        rec = rep.recoveries[0]
        assert 3 in rec["restored_from_pou"]
        assert 3 in rec["degraded_local"]
        # degraded Jacobi surrogate costs iterations but not correctness
        assert rep.residuals[-1] <= 1e-6

    def test_kill_during_setup_redoes_setup(self, ft_problem):
        plan = kill_plan(2, nth=1, op="send")
        rep = ft_solve(ft_problem, spares=1, faults=plan)
        assert rep.converged
        assert any(r["redo_setup"] for r in rep.recoveries)

    def test_double_kill_two_spares(self, ft_problem):
        plan = FaultPlan([FaultSpec("kill", "iteration", rank=1, nth=3),
                          FaultSpec("kill", "iteration", rank=5, nth=6)],
                         seed=7, timeout=2.0)
        rep = ft_solve(ft_problem, spares=2, faults=plan)
        assert rep.converged
        assert len(rep.recoveries) == 2
        dead = sorted(d for r in rep.recoveries for d in r["dead"])
        assert dead == [1, 5]

    def test_kill_out_of_spares_raises(self, ft_problem):
        with pytest.raises(RankFailure, match="repair failed"):
            ft_solve(ft_problem, spares=0, faults=kill_plan(3))

    def test_giveup_after_max_repairs(self, ft_problem):
        # a kill with repairs forbidden: the driver must emit the
        # terminal recovery.giveup event and surface the failure
        recorder = Recorder()
        with pytest.raises(RankFailure):
            ft_solve(ft_problem, spares=1, faults=kill_plan(3),
                     max_repairs=0, recorder=recorder)
        names = [e.name for e in recorder.events]
        assert "recovery.giveup" in names

    def test_transient_drop_absorbed_by_retry(self, ft_problem):
        ref = ft_solve(ft_problem, spares=0)
        plan = FaultPlan([FaultSpec("drop", "send", rank=2, nth=9)],
                         seed=7, timeout=2.0,
                         retry=RetryPolicy(max_retries=3, backoff=1e-4))
        meter = Meter(6)
        rep = ft_solve(ft_problem, spares=1, faults=plan, meter=meter)
        assert rep.converged
        assert not rep.recoveries                 # zero RankFailure path
        assert meter.total_retries() == 1
        assert meter.retries_recovered == 1
        assert meter.retries_exhausted == 0
        assert np.allclose(rep.x, ref.x)

    def test_drop_storm_escalates_to_repair(self, ft_problem):
        retry = RetryPolicy(max_retries=2, backoff=1e-4)
        specs = [FaultSpec("drop", "send", rank=2, nth=9 + j)
                 for j in range(retry.max_retries + 1)]
        plan = FaultPlan(specs, seed=7, timeout=1.0, retry=retry)
        meter = Meter(6)
        rep = ft_solve(ft_problem, spares=1, faults=plan, meter=meter)
        assert rep.converged
        assert meter.retries_exhausted == 1
        # zero-dead repair: nobody died, the lost message is healed by
        # rollback + resend after the communicator reset
        assert len(rep.recoveries) == 1
        assert rep.recoveries[0]["dead"] == []

    def test_bare_drop_without_retry_heals_via_repair(self, ft_problem):
        plan = FaultPlan([FaultSpec("drop", "send", rank=2, nth=9)],
                         seed=7, timeout=1.0)
        rep = ft_solve(ft_problem, spares=1, faults=plan)
        assert rep.converged
        assert len(rep.recoveries) == 1
        assert rep.recoveries[0]["dead"] == []


# ----------------------------------------------------------------------
# Seeded replay determinism (drop/delay) — same plan, same counters
# ----------------------------------------------------------------------

class TestReplayDeterminism:
    def test_drop_delay_replay_identical_counters(self, ft_problem):
        plan = FaultPlan(
            [FaultSpec("drop", "send", rank=2, nth=9),
             FaultSpec("delay", "send", rank=4, nth=15, delay=0.002),
             FaultSpec("delay", "send", rank=1, nth=30, delay=0.001)],
            seed=42, timeout=2.0,
            retry=RetryPolicy(max_retries=3, backoff=1e-4))
        runs = []
        for _ in range(2):
            meter = Meter(6)
            rep = ft_solve(ft_problem, spares=1, faults=plan,
                           meter=meter)
            assert rep.converged
            runs.append((meter.faults_by_kind(), meter.total_retries(),
                         meter.retries_recovered,
                         meter.retries_exhausted, meter.repairs,
                         rep.iterations))
        assert runs[0] == runs[1]
        assert runs[0][0] == {"drop": 1, "delay": 2}

    def test_random_plan_is_seed_deterministic(self):
        cfg = ChaosConfig(solves=1)
        plans = [random_plan(np.random.default_rng(99), cfg)
                 for _ in range(2)]
        assert plans[0].to_json() == plans[1].to_json()
        assert all(f.rank is not None for f in plans[0].faults)


# ----------------------------------------------------------------------
# Neighbor checkpointing plumbing
# ----------------------------------------------------------------------

class TestCheckpointPlumbing:
    def test_partner_map_valid(self, ft_problem):
        dec, _, _ = ft_problem
        partners = partner_map(dec)
        assert len(partners) == dec.num_subdomains
        for i, p in enumerate(partners):
            assert p != i
            assert p in dec.subdomains[i].neighbors

    def test_jacobi_factor_inverts_diagonal(self):
        d = np.array([2.0, 4.0, 0.0, 8.0])
        f = JacobiFactor(np.diag(d))
        x = f.solve(np.ones(4))
        assert np.allclose(x, [0.5, 0.25, 1.0, 0.125])

    def test_jacobi_surrogate_from_subdomain(self, ft_problem):
        dec, _, _ = ft_problem
        sub = dec.subdomains[0]
        f = jacobi_surrogate(sub)
        r = np.ones(sub.A_dir.shape[0])
        assert np.allclose(f.solve(r) * sub.A_dir.diagonal(), r)


# ----------------------------------------------------------------------
# Chaos campaign machinery
# ----------------------------------------------------------------------

class TestChaosCampaign:
    def test_config_validation(self):
        with pytest.raises(Exception, match="solves"):
            ChaosConfig(solves=0)
        with pytest.raises(Exception, match="kill_rate"):
            ChaosConfig(kill_rate=1.5)

    def test_small_campaign_survives(self, ft_problem):
        dec, space, b = ft_problem
        cfg = ChaosConfig(solves=4, timeout=2.0, seed=2013)
        records = []
        for s in range(cfg.solves):
            rng = np.random.default_rng(cfg.seed + 1009 * s)
            plan = random_plan(rng, cfg)
            rec = run_solve(dec, space, b, cfg,
                            plan if plan.faults else None)
            records.append(rec)
        assert all(r["survived"] for r in records)
        assert any(r["planned_faults"] for r in records)

    def test_run_solve_never_raises(self, ft_problem):
        dec, space, b = ft_problem
        cfg = ChaosConfig(solves=1, spares=0, timeout=1.0)
        rec = run_solve(dec, space, b, cfg, kill_plan(3, timeout=1.0))
        assert not rec["survived"]
        assert "RankFailure" in rec["error"]

    def test_campaign_report_json_round_trips(self):
        cfg = ChaosConfig(solves=2, mesh_n=8, nranks=4, timeout=2.0)
        report = run_campaign(cfg)
        d = report.to_dict()
        assert json.loads(json.dumps(d)) == d
        assert d["solves"] == 2
        assert set(d) >= {"survival_rate", "fault_totals",
                          "time_to_recover", "records"}


# ----------------------------------------------------------------------
# RetryPolicy coercion
# ----------------------------------------------------------------------

class TestRetryPolicy:
    def test_backoff_schedule(self):
        p = RetryPolicy(max_retries=4, backoff=0.001, max_backoff=0.003)
        assert p.delay(0) == 0.001
        assert p.delay(1) == 0.002
        assert p.delay(2) == 0.003          # capped
        assert p.delay(3) == 0.003

    def test_as_retry_coercions(self):
        assert as_retry(None) is None
        p = RetryPolicy(max_retries=2)
        assert as_retry(p) is p
        assert as_retry(5).max_retries == 5
        assert as_retry({"max_retries": 2,
                         "backoff": 0.01}).backoff == 0.01
        with pytest.raises(Exception):
            as_retry(True)

    def test_round_trip(self):
        p = RetryPolicy(max_retries=7, backoff=0.002, max_backoff=0.1)
        assert RetryPolicy.from_dict(p.to_dict()) == p

    def test_validation(self):
        with pytest.raises(Exception, match="max_retries"):
            RetryPolicy(max_retries=-1)
        with pytest.raises(Exception, match="backoff"):
            RetryPolicy(backoff=-0.1)
