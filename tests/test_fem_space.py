"""Tests for function spaces and dof numbering."""

import numpy as np
import pytest

from repro.common.errors import FEMError
from repro.fem import FunctionSpace
from repro.mesh import unit_cube, unit_square


class TestDofCounts:
    @pytest.mark.parametrize("k", [1, 2, 3, 4])
    def test_2d_formula(self, k):
        m = unit_square(4)
        V = FunctionSpace(m, k)
        nv, ne, nc = m.num_vertices, m.edges.shape[0], m.num_cells
        expected = nv + ne * (k - 1) + nc * ((k - 1) * (k - 2) // 2)
        assert V.num_scalar_dofs == expected

    @pytest.mark.parametrize("k", [1, 2, 3])
    def test_3d_formula(self, k):
        m = unit_cube(2)
        V = FunctionSpace(m, k)
        nv, ne = m.num_vertices, m.edges.shape[0]
        nf = m.facets.shape[0]
        expected = nv + ne * (k - 1) + (nf if k == 3 else 0)
        assert V.num_scalar_dofs == expected

    def test_vector_doubling(self):
        m = unit_square(3)
        assert FunctionSpace(m, 2, ncomp=2).num_dofs == \
            2 * FunctionSpace(m, 2).num_scalar_dofs

    def test_invalid_ncomp(self):
        with pytest.raises(FEMError):
            FunctionSpace(unit_square(2), 1, ncomp=0)


class TestSharedDofs:
    """Neighbouring cells must assign the same global dof to shared
    geometric nodes — checked via dof coordinates."""

    @pytest.mark.parametrize("gen,k", [(lambda: unit_square(3), 2),
                                       (lambda: unit_square(3), 3),
                                       (lambda: unit_square(2), 4),
                                       (lambda: unit_cube(2), 2),
                                       (lambda: unit_cube(2), 3)])
    def test_coordinates_consistent(self, gen, k):
        m = gen()
        V = FunctionSpace(m, k)
        coords = np.full((V.num_scalar_dofs, m.dim), np.nan)
        ref = V.ref
        vv = m.vertices[m.cells]
        origin = vv[:, 0, :]
        edges = vv[:, 1:, :] - vv[:, :1, :]
        phys = origin[:, None, :] + np.einsum("qd,cde->cqe", ref.nodes, edges)
        for c in range(m.num_cells):
            for ln, dof in enumerate(V.cell_scalar_dofs[c]):
                if np.isnan(coords[dof, 0]):
                    coords[dof] = phys[c, ln]
                else:
                    assert np.allclose(coords[dof], phys[c, ln],
                                       atol=1e-12), \
                        f"dof {dof} multiply defined at different points"
        assert not np.isnan(coords).any()

    def test_all_dofs_touched(self):
        V = FunctionSpace(unit_square(3), 3)
        touched = np.zeros(V.num_scalar_dofs, dtype=bool)
        touched[V.cell_scalar_dofs.ravel()] = True
        assert touched.all()


class TestBoundaryDofs:
    def test_p1_boundary_matches_vertices(self):
        m = unit_square(4)
        V = FunctionSpace(m, 1)
        assert np.array_equal(V.boundary_scalar_dofs, m.boundary_vertices)

    @pytest.mark.parametrize("k", [2, 3])
    def test_boundary_coords_on_boundary(self, k):
        m = unit_square(4)
        V = FunctionSpace(m, k)
        c = V.scalar_dof_coordinates[V.boundary_scalar_dofs]
        on_bnd = (np.isclose(c[:, 0], 0) | np.isclose(c[:, 0], 1) |
                  np.isclose(c[:, 1], 0) | np.isclose(c[:, 1], 1))
        assert on_bnd.all()

    def test_boundary_count_p2_2d(self):
        m = unit_square(4)
        V = FunctionSpace(m, 2)
        # 4n vertices + 4n edge midpoints on the boundary
        assert V.boundary_scalar_dofs.size == 2 * (4 * 4)

    def test_3d_boundary_face_dofs(self):
        m = unit_cube(2)
        V = FunctionSpace(m, 3)
        c = V.scalar_dof_coordinates[V.boundary_scalar_dofs]
        on_bnd = np.any(np.isclose(c, 0) | np.isclose(c, 1), axis=1)
        assert on_bnd.all()

    def test_where_filter(self):
        m = unit_square(4)
        V = FunctionSpace(m, 2)
        left = V.boundary_dofs(lambda x: x[:, 0] < 1e-12)
        coords = V.scalar_dof_coordinates[left]
        assert np.allclose(coords[:, 0], 0.0)

    def test_vector_boundary_interleaved(self):
        m = unit_square(3)
        V = FunctionSpace(m, 1, ncomp=2)
        bd = V.boundary_dofs()
        assert bd.size == 2 * m.boundary_vertices.size
        # components come in pairs 2k, 2k+1
        assert np.array_equal(bd[::2] + 1, bd[1::2])


class TestInterpolation:
    def test_linear_exact(self):
        m = unit_square(3)
        V = FunctionSpace(m, 2)
        u = V.interpolate(lambda x: 2 * x[:, 0] - x[:, 1] + 1)
        c = V.scalar_dof_coordinates
        assert np.allclose(u, 2 * c[:, 0] - c[:, 1] + 1)

    def test_vector_interpolation_shape(self):
        m = unit_square(3)
        V = FunctionSpace(m, 1, ncomp=2)
        u = V.interpolate(lambda x: np.column_stack([x[:, 0], x[:, 1]]))
        assert u.shape == (V.num_dofs,)
        c = V.scalar_dof_coordinates
        assert np.allclose(u[0::2], c[:, 0])
        assert np.allclose(u[1::2], c[:, 1])

    def test_bad_shape_raises(self):
        V = FunctionSpace(unit_square(2), 1)
        with pytest.raises(FEMError):
            V.interpolate(lambda x: np.zeros((3, 3)))
