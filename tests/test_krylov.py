"""Tests for the Krylov methods, including p1-GMRES equivalence."""

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import ConvergenceError, KrylovError
from repro.fem import FunctionSpace, assemble_load, assemble_stiffness, restrict_to_free
from repro.krylov import cg, gmres, p1_gmres
from repro.mesh import unit_square


@pytest.fixture(scope="module")
def system():
    m = unit_square(10)
    V = FunctionSpace(m, 2)
    A = assemble_stiffness(V)
    b = assemble_load(V, 1.0)
    Aff, bf, _ = restrict_to_free(A, b, V.boundary_dofs())
    import scipy.sparse.linalg as spla
    return Aff.tocsr(), bf, spla.spsolve(Aff.tocsc(), bf)


class TestGMRES:
    def test_solves(self, system):
        A, b, xref = system
        r = gmres(A, b, tol=1e-10, restart=80, maxiter=400)
        assert r.converged
        assert np.linalg.norm(r.x - xref) < 1e-8 * np.linalg.norm(xref)

    def test_residuals_monotone_within_cycle(self, system):
        A, b, _ = system
        r = gmres(A, b, tol=1e-8, restart=200, maxiter=400)
        res = np.array(r.residuals)
        assert np.all(np.diff(res) <= 1e-12)

    def test_restart_path(self, system):
        A, b, xref = system
        r = gmres(A, b, tol=1e-8, restart=5, maxiter=600)
        assert r.converged

    def test_zero_rhs(self, system):
        A, _, _ = system
        r = gmres(A, np.zeros(A.shape[0]))
        assert r.iterations == 0
        assert np.all(r.x == 0)

    def test_maxiter_stall(self, system):
        A, b, _ = system
        r = gmres(A, b, tol=1e-14, maxiter=3, restart=2)
        assert not r.converged
        assert r.iterations <= 3

    def test_raise_on_stall(self, system):
        A, b, _ = system
        with pytest.raises(ConvergenceError) as exc:
            gmres(A, b, tol=1e-14, maxiter=3, restart=2,
                  raise_on_stall=True)
        assert exc.value.x is not None
        assert len(exc.value.residuals) > 0

    def test_callback_invoked(self, system):
        A, b, _ = system
        seen = []
        gmres(A, b, tol=1e-6, restart=40, maxiter=100,
              callback=lambda it, res: seen.append((it, res)))
        assert len(seen) > 2
        assert seen[0][0] == 0

    def test_callable_operator(self, system):
        A, b, xref = system
        r = gmres(lambda v: A @ v, b, tol=1e-8, restart=60, maxiter=200)
        assert np.allclose(r.x, xref, atol=1e-6 * abs(xref).max())

    def test_right_preconditioning_counts_syncs(self, system):
        A, b, _ = system
        r = gmres(A, b, tol=1e-8, restart=60, maxiter=200)
        # 2 syncs per inner iteration plus restarts' residual norms
        assert r.global_syncs >= 2 * r.iterations

    def test_invalid_restart(self, system):
        A, b, _ = system
        with pytest.raises(KrylovError):
            gmres(A, b, restart=0)

    def test_x0(self, system):
        A, b, xref = system
        r = gmres(A, b, x0=xref, tol=1e-8)
        assert r.iterations == 0


class TestCG:
    def test_solves(self, system):
        A, b, xref = system
        r = cg(A, b, tol=1e-10, maxiter=500)
        assert r.converged
        assert np.linalg.norm(r.x - xref) < 1e-8 * np.linalg.norm(xref)

    def test_jacobi_preconditioner_helps(self, system):
        A, b, _ = system
        plain = cg(A, b, tol=1e-8, maxiter=1000)
        M = sp.diags(1.0 / A.diagonal())
        pre = cg(A, b, M=M, tol=1e-8, maxiter=1000)
        assert pre.converged
        assert pre.iterations <= plain.iterations + 5

    def test_breakdown_on_indefinite(self):
        A = sp.csr_matrix(np.diag([1.0, -1.0]))
        with pytest.raises(KrylovError):
            cg(A, np.ones(2), maxiter=10)

    def test_zero_rhs(self, system):
        A, _, _ = system
        assert cg(A, np.zeros(A.shape[0])).iterations == 0


class TestP1GMRES:
    def test_matches_gmres_iterations(self, system):
        """Exact-arithmetic equivalence: same iteration count (±1) and
        same converged solution."""
        A, b, xref = system
        r1 = gmres(A, b, tol=1e-9, restart=100, maxiter=300)
        r2 = p1_gmres(A, b, tol=1e-9, restart=100, maxiter=300)
        assert r2.converged
        assert abs(r1.iterations - r2.iterations) <= 2
        assert np.linalg.norm(r2.x - xref) < 1e-7 * np.linalg.norm(xref)

    def test_preconditioned(self, system):
        A, b, xref = system
        M = sp.diags(1.0 / A.diagonal())
        r = p1_gmres(A, b, M=M, tol=1e-8, restart=60, maxiter=300)
        assert r.converged
        assert np.linalg.norm(r.x - xref) < 1e-5 * np.linalg.norm(xref)

    def test_fewer_blocking_syncs(self, system):
        A, b, _ = system
        r1 = gmres(A, b, tol=1e-8, restart=100, maxiter=300)
        r2 = p1_gmres(A, b, tol=1e-8, restart=100, maxiter=300)
        assert r2.global_syncs < r1.global_syncs / 5
        assert r2.overlapped_reductions >= r2.iterations

    def test_restart_cycles(self, system):
        A, b, xref = system
        r = p1_gmres(A, b, tol=1e-8, restart=12, maxiter=600)
        assert r.converged

    def test_zero_rhs(self, system):
        A, _, _ = system
        assert p1_gmres(A, np.zeros(A.shape[0])).iterations == 0

    def test_invalid_restart(self, system):
        A, b, _ = system
        with pytest.raises(KrylovError):
            p1_gmres(A, b, restart=0)


class TestPropertyBased:
    @given(st.integers(min_value=2, max_value=20), st.integers(0, 100))
    @settings(max_examples=20, deadline=None)
    def test_gmres_random_spd(self, n, seed):
        rng = np.random.default_rng(seed)
        M = rng.standard_normal((n, n))
        A = M @ M.T + n * np.eye(n)
        b = rng.standard_normal(n)
        r = gmres(A, b, tol=1e-10, restart=n + 2, maxiter=10 * n)
        assert np.linalg.norm(A @ r.x - b) <= 1e-7 * np.linalg.norm(b)

    @given(st.integers(min_value=2, max_value=15), st.integers(0, 50))
    @settings(max_examples=15, deadline=None)
    def test_p1_random_spd(self, n, seed):
        rng = np.random.default_rng(seed)
        M = rng.standard_normal((n, n))
        A = M @ M.T + n * np.eye(n)
        b = rng.standard_normal(n)
        r = p1_gmres(A, b, tol=1e-9, restart=n + 3, maxiter=10 * n)
        assert np.linalg.norm(A @ r.x - b) <= 1e-5 * np.linalg.norm(b)


class TestIterationEvents:
    """Per-iteration telemetry events must reconstruct the residual
    history of every driver exactly (restart fixups included)."""

    def _events_match(self, driver, system, **kw):
        from repro.krylov import SolveProfiler
        from repro.obs import Recorder, iteration_residuals
        A, b, _ = system
        rec = Recorder()
        r = driver(A, b, profiler=SolveProfiler(recorder=rec), **kw)
        assert iteration_residuals(rec) == r.residuals
        return rec, r

    def test_gmres(self, system):
        self._events_match(gmres, system, tol=1e-8, restart=80,
                           maxiter=400)

    def test_gmres_restarted(self, system):
        rec, r = self._events_match(gmres, system, tol=1e-8, restart=5,
                                    maxiter=600)
        restarts = [e for e in rec.events if e.name == "restart"]
        assert len(restarts) >= 1
        assert restarts[0].attrs["cycle"] == 1

    def test_p1_gmres(self, system):
        rec, r = self._events_match(p1_gmres, system, tol=1e-8,
                                    restart=5, maxiter=600)
        assert any(e.name == "restart" for e in rec.events)

    def test_cg(self, system):
        self._events_match(cg, system, tol=1e-8, maxiter=600)

    def test_fgmres(self, system):
        from repro.krylov import fgmres
        self._events_match(fgmres, system, tol=1e-8, restart=5,
                           maxiter=600)

    def test_s_step_gmres(self, system):
        from repro.krylov import s_step_gmres
        self._events_match(s_step_gmres, system, tol=1e-6, s=6,
                           maxiter=600)

    def test_no_recorder_emits_nothing(self, system):
        """The default profiler records zero events — drivers stay
        telemetry-free unless a Recorder is attached."""
        from repro.krylov import SolveProfiler
        A, b, _ = system
        prof = SolveProfiler()
        r = gmres(A, b, tol=1e-8, restart=5, maxiter=600, profiler=prof)
        assert r.converged
        assert not prof.recorder.enabled
        assert not prof.recorder.events
