"""The kernel-backend registry and its three built-in backends.

The load-bearing guarantees pinned here:

* the ``numpy`` backend performs **bitwise** the operations the
  historical inlined code performed (MGS, blocked CGS2, the overlap
  exchange, the RAS combine);
* the ``fp32`` backend converges to the same fp64 tolerance with a
  bounded iteration penalty, and accounts its precision round-trips;
* the ``compiled`` backend is numerically interchangeable with the
  reference and degrades to ``numpy`` when the library is absent;
* the block plumbing enforces the documented dtype contract.
"""

from __future__ import annotations

import warnings

import numpy as np
import pytest
import scipy.sparse as sp

from repro import SchwarzSolver
from repro.common.errors import KrylovError, ReproError
from repro.common.validation import as_float64_block
from repro.core.coarse import CoarseOperator
from repro.core.deflation import DeflationSpace
from repro.core.geneo import compute_deflation
from repro.core.ras import OneLevelRAS
from repro.fem import channels_and_inclusions
from repro.fem.forms import DiffusionForm
from repro.kernels import (
    ENV_VAR,
    BackendUnavailable,
    CompiledBackend,
    Fp32Backend,
    KernelBackend,
    available_backends,
    backend_names,
    default_backend,
    get_backend,
    register,
)
from repro.kernels.csrc import load_library
from repro.kernels.factor import (
    FusedLocalApply,
    SymmetricLDLFactorization,
    probe_factorization,
)
from repro.kernels.registry import _FACTORIES
from repro.krylov import fgmres, gmres
from repro.mesh import unit_square
from repro.obs import Recorder
from repro.resilience import HealthMonitor
from repro.solvers.ldl import SparseLDL

HAS_LIB = load_library() is not None


def _spd(n, rng, density=0.3):
    A = sp.random(n, n, density=density, random_state=rng.integers(1 << 30))
    A = A + A.T + n * sp.eye(n)
    return sp.csr_matrix(A)


# ----------------------------------------------------------------------
# Registry behaviour
# ----------------------------------------------------------------------

def test_builtin_backends_registered():
    assert {"numpy", "fp32", "compiled"} <= set(backend_names())


def test_get_backend_default_is_numpy(monkeypatch):
    monkeypatch.delenv(ENV_VAR, raising=False)
    assert get_backend().name == "numpy"
    assert type(get_backend()) is KernelBackend


def test_get_backend_env_var(monkeypatch):
    monkeypatch.setenv(ENV_VAR, "fp32")
    assert get_backend().name == "fp32"
    # an explicit argument wins over the environment
    assert get_backend("numpy").name == "numpy"


def test_get_backend_unknown_name():
    with pytest.raises(ReproError, match="unknown kernel backend"):
        get_backend("no-such-backend")


def test_get_backend_instance_passthrough():
    inst = Fp32Backend()
    assert get_backend(inst) is inst


def test_register_and_unavailable_fallback(monkeypatch):
    @register("_test_broken")
    def _factory(recorder):
        raise BackendUnavailable("probe failed on purpose")

    try:
        with pytest.warns(RuntimeWarning, match="falling back to 'numpy'"):
            backend = get_backend("_test_broken")
        assert backend.name == "numpy"
        assert any("probe failed on purpose" in n for n in backend.notes)
    finally:
        _FACTORIES.pop("_test_broken", None)


def test_compiled_unavailable_degrades(monkeypatch):
    import repro.kernels.compiled as mod
    monkeypatch.setattr(mod, "load_library", lambda: None)
    with pytest.warns(RuntimeWarning, match="unavailable"):
        backend = get_backend("compiled")
    assert backend.name == "numpy"


def test_available_backends_table():
    table = available_backends()
    assert table["numpy"]["available"] is True
    assert table["fp32"]["precision"] == "mixed"
    for row in table.values():
        assert {"name", "available"} <= set(row)


def test_default_backend_is_shared_singleton():
    assert default_backend() is default_backend()
    assert default_backend().name == "numpy"


# ----------------------------------------------------------------------
# Bitwise regression: the numpy backend IS the historical code
# ----------------------------------------------------------------------

def test_ortho_step_bitwise_mgs(rng):
    """numpy ortho_step == the pre-registry inlined MGS, bit for bit."""
    n, m = 200, 8
    kern = KernelBackend()
    V = np.zeros((n, m + 1))
    H = np.zeros((m + 1, m))
    Vr, Hr = V.copy(), H.copy()
    v0 = rng.standard_normal(n)
    V[:, 0] = Vr[:, 0] = v0 / np.linalg.norm(v0)
    scratch = np.empty(n)
    for j in range(m):
        w = rng.standard_normal(n)
        wr = w.copy()
        syncs = kern.ortho_step(V, w, H, j, scratch)
        assert syncs == 2
        # the historical inline loop, verbatim
        for i in range(j + 1):
            Hr[i, j] = float(wr @ Vr[:, i])
            np.multiply(Vr[:, i], Hr[i, j], out=scratch)
            np.subtract(wr, scratch, out=wr)
        Hr[j + 1, j] = float(np.linalg.norm(wr))
        if Hr[j + 1, j] > 0:
            np.divide(wr, Hr[j + 1, j], out=Vr[:, j + 1])
    assert np.array_equal(H, Hr)
    assert np.array_equal(V, Vr)


def test_ortho_block_bitwise_cgs2(rng):
    """numpy ortho_block == the pre-registry blocked CGS2, bit for bit."""
    n, k, p = 150, 12, 3
    kern = KernelBackend()
    Vb, _ = np.linalg.qr(rng.standard_normal((n, k)))
    Vb = np.ascontiguousarray(Vb)
    W = rng.standard_normal((n, p))

    def qr_block(M):
        return np.linalg.qr(M)

    Hcol, Vnew, Hdiag = kern.ortho_block(Vb, k, W.copy(), qr_block)
    # reference: two classical Gram–Schmidt sweeps then QR, verbatim
    C1 = Vb[:, :k].T @ W
    Wr = W - Vb[:, :k] @ C1
    C2 = Vb[:, :k].T @ Wr
    Wr = Wr - Vb[:, :k] @ C2
    Vr, Hr = qr_block(Wr)
    assert np.array_equal(Hcol, C1 + C2)
    assert np.array_equal(Vnew, Vr)
    assert np.array_equal(Hdiag, Hr)


def test_exchange_sum_bitwise(diffusion_decomposition, rng):
    dec = diffusion_decomposition
    x_list = [rng.standard_normal(s.size) for s in dec.subdomains]
    got = dec.exchange_sum(x_list)
    # the pre-registry inline loop, verbatim
    ref = [x.copy() for x in x_list]
    for s in dec.subdomains:
        for j in s.neighbors:
            ref[s.index][s.shared[j]] += \
                x_list[j][dec.subdomains[j].shared[s.index]]
    for g, r in zip(got, ref):
        assert np.array_equal(g, r)


def test_ras_apply_bitwise_on_numpy(diffusion_decomposition, rng):
    """The numpy backend keeps the legacy solve-then-combine path:
    apply == combine(per-subdomain solves), bit for bit."""
    dec = diffusion_decomposition
    ras = OneLevelRAS(dec, kernels=KernelBackend())
    assert ras._fused is None
    r = rng.standard_normal(dec.problem.num_free)
    got = ras.apply(r)
    sols = [f.solve(r[s.dofs])
            for f, s in zip(ras.factorizations, dec.subdomains)]
    assert np.array_equal(got, dec.combine(sols))


def test_gmres_default_kernels_matches_explicit(diffusion_decomposition):
    dec = diffusion_decomposition
    b = dec.problem.rhs()
    ras = OneLevelRAS(dec)
    r1 = gmres(dec.matvec, b, M=ras.apply, tol=1e-8)
    r2 = gmres(dec.matvec, b, M=ras.apply, tol=1e-8,
               kernels=KernelBackend())
    assert np.array_equal(r1.x, r2.x)
    assert r1.iterations == r2.iterations


# ----------------------------------------------------------------------
# Symmetric LDLᵀ factorization + fused handles
# ----------------------------------------------------------------------

@pytest.mark.parametrize("dtype,tol", [(np.float64, 1e-12),
                                       (np.float32, 1e-5)])
def test_symmetric_ldl_scipy_path(rng, dtype, tol):
    A = _spd(60, rng)
    fact = SymmetricLDLFactorization(A, dtype=dtype, lib=None)
    b = rng.standard_normal(60)
    x = fact.solve(b)
    assert x.dtype == np.float64
    assert np.linalg.norm(A @ x - b) <= tol * np.linalg.norm(b)


@pytest.mark.skipif(not HAS_LIB, reason="no C toolchain")
@pytest.mark.parametrize("dtype,tol", [(np.float64, 1e-12),
                                       (np.float32, 1e-5)])
def test_symmetric_ldl_compiled_path(rng, dtype, tol):
    A = _spd(60, rng)
    fact = SymmetricLDLFactorization(A, dtype=dtype, lib=load_library())
    b = rng.standard_normal(60)
    x = fact.solve(b)
    assert np.linalg.norm(A @ x - b) <= tol * np.linalg.norm(b)
    B = rng.standard_normal((60, 4))
    X = fact.solve(B)
    assert X.shape == (60, 4)
    for c in range(4):
        assert np.array_equal(X[:, c], fact.solve(B[:, c]))


def test_probe_factorization_rejects_garbage(rng):
    A = _spd(40, rng)

    class Broken:
        def solve(self, b):
            return np.full_like(b, np.nan)

    class Wrong:
        def solve(self, b):
            return b * 3.0

    good = SymmetricLDLFactorization(A, dtype=np.float64, lib=None)
    assert probe_factorization(good, A, 1e-10)
    assert not probe_factorization(Broken(), A, 1e-2)
    assert not probe_factorization(Wrong(), A, 1e-2)


@pytest.mark.skipif(not HAS_LIB, reason="no C toolchain")
def test_fused_local_apply_matches_plain(rng):
    n_glob, n_loc = 120, 40
    A = _spd(n_loc, rng)
    dofs = rng.choice(n_glob, size=n_loc, replace=False).astype(np.int64)
    d = rng.random(n_loc)
    fact = SymmetricLDLFactorization(A, dtype=np.float32,
                                     lib=load_library())
    h = FusedLocalApply(fact, dofs, d)
    r = rng.standard_normal(n_glob)
    out = np.zeros(n_glob)
    h.apply_weighted(r, out)
    ref = np.zeros(n_glob)
    ref[dofs] += d * fact.solve(r[dofs])
    assert np.allclose(out, ref, atol=1e-5 * np.abs(ref).max())


@pytest.mark.skipif(not HAS_LIB, reason="no C toolchain")
def test_sparse_ldl_compiled_hook(rng):
    A = _spd(50, rng)
    ref = SparseLDL(A)
    b = rng.standard_normal(50)
    x_ref = ref.solve(b)
    hooked = SparseLDL(A)
    assert hooked.enable_compiled_solve()
    x = hooked.solve(b)
    assert np.allclose(x, x_ref, rtol=1e-12, atol=1e-12 * np.abs(x_ref).max())
    B = rng.standard_normal((50, 3))
    assert np.allclose(hooked.solve(B), ref.solve(B), rtol=1e-12)


def test_sparse_ldl_hook_absent_library(rng, monkeypatch):
    import repro.kernels.csrc as csrc
    monkeypatch.setattr(csrc, "load_library", lambda: None)
    A = _spd(20, rng)
    f = SparseLDL(A)
    assert not f.enable_compiled_solve()
    b = rng.standard_normal(20)
    assert np.linalg.norm(A @ f.solve(b) - b) <= 1e-10 * np.linalg.norm(b)


# ----------------------------------------------------------------------
# fp32 / compiled end-to-end accuracy, convergence and accounting
# ----------------------------------------------------------------------

@pytest.fixture(scope="module")
def small_problem():
    mesh = unit_square(20)
    form = DiffusionForm(degree=2, kappa=channels_and_inclusions(mesh,
                                                                 seed=2))
    return mesh, form


def _solve(mesh, form, backend, recorder=None, **kw):
    solver = SchwarzSolver(mesh, form, num_subdomains=6, nev=6,
                           kernel_backend=backend, recorder=recorder, **kw)
    return solver, solver.solve(tol=1e-8)


def test_backend_accuracy_and_iteration_budget(small_problem):
    mesh, form = small_problem
    _, ref = _solve(mesh, form, "numpy")
    assert ref.converged
    xnorm = np.linalg.norm(ref.x)
    for name, xtol, it_budget in (("compiled", 1e-9, 1),
                                  ("fp32", 1e-5, 10)):
        _, rep = _solve(mesh, form, name)
        assert rep.converged, name
        assert np.linalg.norm(rep.x - ref.x) <= xtol * xnorm, name
        assert rep.iterations <= ref.iterations + it_budget, name


def test_fp32_round_trip_counters(small_problem):
    mesh, form = small_problem
    rec = Recorder()
    solver, rep = _solve(mesh, form, "fp32", recorder=rec)
    assert rep.converged
    assert solver.kernels.name == "fp32"
    c = rec.counters
    assert c.get("kernel.fp32_ortho_steps", 0) >= rep.iterations
    assert c.get("kernel.fp32_bytes_down", 0) > 0
    # local applies and the coarse solve happen once per iteration-ish
    assert c.get("kernel.fp32_local_applies", 0) > 0 or \
        c.get("kernel.fp32_fallbacks", 0) > 0
    if HAS_LIB:
        assert c.get("kernel.fp32_bytes_up", 0) > 0


def test_fp32_block_and_recycled_paths(small_problem):
    mesh, form = small_problem
    solver = SchwarzSolver(mesh, form, num_subdomains=6, nev=6,
                           kernel_backend="fp32")
    sess = solver.session()
    b = solver.problem.rhs()
    B = np.column_stack([b, 0.5 * b])
    batch = sess.solve_many(B, tol=1e-8)
    assert batch.converged
    ref = SchwarzSolver(mesh, form, num_subdomains=6, nev=6).solve(tol=1e-8)
    assert np.linalg.norm(batch.X[:, 0] - ref.x) \
        <= 1e-5 * np.linalg.norm(ref.x)
    rep = sess.solve(b, tol=1e-8)
    assert rep.converged


def test_fp32_coarse_fallback_on_nonfinite(small_problem):
    """A non-finite reduced-precision coarse solve must drop the kernel
    mirror and retry fp64 before escalating to the pseudo-inverse."""
    mesh, form = small_problem
    solver = SchwarzSolver(mesh, form, num_subdomains=6, nev=6,
                           kernel_backend="fp32")
    coarse = solver.coarse
    coarse.resilient = True
    coarse._kernel_solve = lambda w: np.full(coarse.dim, np.nan)
    w = np.arange(coarse.dim, dtype=np.float64)
    with pytest.warns(RuntimeWarning, match="retrying fp64"):
        y = coarse.solve(w)
    assert np.all(np.isfinite(y))
    assert coarse._kernel_solve is None
    assert coarse.fallbacks == 1
    assert not coarse.rank_deficient      # the fp64 factor was fine


def test_env_var_backend_selection(small_problem, monkeypatch):
    mesh, form = small_problem
    monkeypatch.setenv(ENV_VAR, "fp32")
    solver = SchwarzSolver(mesh, form, num_subdomains=4, nev=4)
    assert solver.kernels.name == "fp32"
    assert solver.solve(tol=1e-8).converged


# ----------------------------------------------------------------------
# Dtype contract of the block plumbing
# ----------------------------------------------------------------------

def test_as_float64_block_contract(rng):
    X32 = rng.standard_normal((10, 3)).astype(np.float32)
    out = as_float64_block(X32)
    assert out.dtype == np.float64
    assert np.array_equal(out, X32.astype(np.float64))
    X64 = rng.standard_normal((10, 3))
    assert as_float64_block(X64) is X64          # no copy on the hot path
    with pytest.raises(ReproError, match="column block"):
        as_float64_block(np.zeros(10))
    with pytest.raises(ReproError, match="real block"):
        as_float64_block(np.zeros((4, 2), dtype=complex))


def test_block_plumbing_accepts_float32(diffusion_decomposition, rng):
    dec = diffusion_decomposition
    n = dec.problem.num_free
    X32 = rng.standard_normal((n, 2)).astype(np.float32)
    Y = dec.matvec_block(X32)
    assert Y.dtype == np.float64
    assert np.array_equal(Y, dec.matvec_block(X32.astype(np.float64)))
    ras = OneLevelRAS(dec)
    P = ras.apply_block(X32)
    assert P.dtype == np.float64
    assert np.array_equal(P, ras.apply_block(X32.astype(np.float64)))
    results = [compute_deflation(s, nev=3, seed=s.index)
               for s in dec.subdomains]
    space = DeflationSpace(dec, [r.W for r in results])
    W = space.zt_dot_block(X32)
    assert W.dtype == np.float64
    assert np.array_equal(W, space.zt_dot_block(X32.astype(np.float64)))
    Y32 = rng.standard_normal((space.m, 2)).astype(np.float32)
    Z = space.z_dot_block(Y32)
    assert Z.dtype == np.float64


def test_as_operator_rejects_complex_upcasts_f32(rng):
    A32 = rng.standard_normal((12, 12)).astype(np.float32)
    A32 = A32 @ A32.T + 12 * np.eye(12, dtype=np.float32)
    b = rng.standard_normal(12)
    res = gmres(A32, b, tol=1e-10)
    assert res.x.dtype == np.float64
    assert np.linalg.norm(A32.astype(np.float64) @ res.x - b) \
        <= 1e-8 * np.linalg.norm(b)
    with pytest.raises(KrylovError, match="complex"):
        gmres(A32.astype(complex), b)


# ----------------------------------------------------------------------
# fgmres with a deliberately inexact (fp32, iteration-varying) M
# ----------------------------------------------------------------------

def test_fgmres_inexact_fp32_preconditioner(diffusion_decomposition):
    """The satellite scenario: a preconditioner that rounds its output
    to fp32 *and* changes every application still converges to the fp64
    tolerance under FGMRES, keeps the health monitor quiet, and the
    profiler attributes time to the right spans."""
    dec = diffusion_decomposition
    ras = OneLevelRAS(dec)
    b = dec.problem.rhs()
    calls = {"n": 0}

    def inexact_M(r):
        calls["n"] += 1
        y = ras.apply(r).astype(np.float32).astype(np.float64)
        return y * (1.0 + 1e-4 * (calls["n"] % 3))   # iteration-varying

    health = HealthMonitor()
    from repro.krylov import SolveProfiler
    prof = SolveProfiler()
    with warnings.catch_warnings():
        warnings.simplefilter("error")               # quiet = no warnings
        res = fgmres(dec.matvec, b, M=inexact_M, tol=1e-10,
                     health=health, profiler=prof)
    assert res.converged
    resid = np.linalg.norm(b - dec.matvec(res.x))
    assert resid <= 1e-9 * np.linalg.norm(b)
    assert health.breakdowns == []
    assert res.profile.get("apply", 0) > 0
    assert res.profile.get("matvec", 0) > 0
    assert res.profile.get("orthogonalization", 0) >= 0
    assert set(res.profile) >= {"apply", "matvec"}


def test_fgmres_fp32_kernels_with_health(diffusion_decomposition):
    dec = diffusion_decomposition
    ras = OneLevelRAS(dec, kernels=Fp32Backend())
    b = dec.problem.rhs()
    health = HealthMonitor()
    res = fgmres(dec.matvec, b, M=ras.apply, tol=1e-10,
                 health=health, kernels=Fp32Backend())
    assert res.converged
    assert health.breakdowns == []
    assert np.linalg.norm(b - dec.matvec(res.x)) \
        <= 1e-9 * np.linalg.norm(b)


# ----------------------------------------------------------------------
# Coarse operator routing
# ----------------------------------------------------------------------

def test_coarse_operator_kernel_routing(diffusion_decomposition):
    dec = diffusion_decomposition
    results = [compute_deflation(s, nev=4, seed=s.index)
               for s in dec.subdomains]
    W = [r.W for r in results]
    ref_space = DeflationSpace(dec, W)
    ref = CoarseOperator(ref_space)
    assert ref._kernel_solve is None      # numpy backend: fp64 direct
    space32 = DeflationSpace(dec, W)
    c32 = CoarseOperator(space32, kernels=Fp32Backend())
    assert space32.kernels.name == "fp32"
    rng = np.random.default_rng(7)
    w = rng.standard_normal(ref.dim)
    y64, y32 = ref.solve(w), c32.solve(w)
    assert np.linalg.norm(y32 - y64) <= 1e-3 * np.linalg.norm(y64)
    u = rng.standard_normal(dec.problem.num_free)
    assert np.linalg.norm(c32.correction(u) - ref.correction(u)) \
        <= 1e-3 * np.linalg.norm(ref.correction(u)) + 1e-12
    y = rng.standard_normal(ref.dim)
    assert np.linalg.norm(c32.az_dot(y) - ref.az_dot(y)) \
        <= 1e-3 * np.linalg.norm(ref.az_dot(y))
