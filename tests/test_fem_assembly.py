"""Assembly tests: convergence orders, algebraic identities, BCs."""

import numpy as np
import pytest
import scipy.sparse.linalg as spla

from repro.common.errors import FEMError
from repro.fem import (
    FunctionSpace,
    apply_dirichlet,
    assemble_elasticity,
    assemble_load,
    assemble_mass,
    assemble_stiffness,
    lame_parameters,
    restrict_to_free,
)
from repro.mesh import unit_cube, unit_square


def solve_poisson(mesh, k, f, exact):
    V = FunctionSpace(mesh, k)
    A = assemble_stiffness(V)
    b = assemble_load(V, f)
    Aff, bf, free = restrict_to_free(A, b, V.boundary_dofs())
    u = np.zeros(V.num_dofs)
    u[free] = spla.spsolve(Aff.tocsc(), bf)
    e = u - V.interpolate(exact)
    M = assemble_mass(V)
    return float(np.sqrt(e @ (M @ e)))


class TestPoissonConvergence:
    @pytest.mark.parametrize("k,expected", [(1, 2), (2, 3), (3, 4)])
    def test_2d_l2_rates(self, k, expected):
        def exact(x):
            return np.sin(np.pi * x[:, 0]) * np.sin(np.pi * x[:, 1])

        def f(x):
            return 2 * np.pi ** 2 * exact(x)

        e1 = solve_poisson(unit_square(4), k, f, exact)
        e2 = solve_poisson(unit_square(8), k, f, exact)
        rate = np.log2(e1 / e2)
        assert rate > expected - 0.4

    def test_3d_p2_rate(self):
        def exact(x):
            return (np.sin(np.pi * x[:, 0]) * np.sin(np.pi * x[:, 1]) *
                    np.sin(np.pi * x[:, 2]))

        def f(x):
            return 3 * np.pi ** 2 * exact(x)

        e1 = solve_poisson(unit_cube(2), 2, f, exact)
        e2 = solve_poisson(unit_cube(4), 2, f, exact)
        assert np.log2(e1 / e2) > 2.5


class TestStiffness:
    def test_symmetric(self):
        V = FunctionSpace(unit_square(4), 3)
        A = assemble_stiffness(V)
        assert abs(A - A.T).max() < 1e-12 * abs(A).max()

    def test_constant_in_kernel(self):
        """∇(const) = 0: stiffness times the all-ones vector vanishes."""
        V = FunctionSpace(unit_square(4), 2)
        A = assemble_stiffness(V)
        assert np.abs(A @ np.ones(V.num_dofs)).max() < 1e-10

    def test_linear_patch(self):
        """A acting on a linear interpolant equals the boundary flux only:
        interior rows vanish (patch test)."""
        m = unit_square(4)
        V = FunctionSpace(m, 2)
        A = assemble_stiffness(V)
        u = V.interpolate(lambda x: 3 * x[:, 0] + 2 * x[:, 1])
        r = A @ u
        interior = np.setdiff1d(np.arange(V.num_dofs), V.boundary_dofs())
        assert np.abs(r[interior]).max() < 1e-10

    def test_per_cell_coefficient(self):
        m = unit_square(4)
        V = FunctionSpace(m, 1)
        kap = np.full(m.num_cells, 2.0)
        A1 = assemble_stiffness(V, 1.0)
        A2 = assemble_stiffness(V, kap)
        assert abs(A2 - 2 * A1).max() < 1e-12

    def test_callable_coefficient(self):
        m = unit_square(4)
        V = FunctionSpace(m, 1)
        A1 = assemble_stiffness(V, lambda x: np.full(len(x), 3.0))
        A2 = assemble_stiffness(V, 3.0)
        assert abs(A1 - A2).max() < 1e-12

    def test_rejects_vector_space(self):
        V = FunctionSpace(unit_square(2), 1, ncomp=2)
        with pytest.raises(FEMError):
            assemble_stiffness(V)

    def test_rejects_bad_coefficient_shape(self):
        V = FunctionSpace(unit_square(2), 1)
        with pytest.raises(FEMError):
            assemble_stiffness(V, np.ones(7))


class TestMass:
    def test_total_mass_is_volume(self):
        V = FunctionSpace(unit_square(4), 2)
        M = assemble_mass(V)
        ones = np.ones(V.num_dofs)
        assert ones @ (M @ ones) == pytest.approx(1.0)

    def test_vector_mass_block_structure(self):
        V = FunctionSpace(unit_square(3), 1, ncomp=2)
        M = assemble_mass(V).toarray()
        # no coupling between components
        assert np.abs(M[0::2, 1::2]).max() == 0

    def test_spd(self):
        V = FunctionSpace(unit_square(3), 2)
        M = assemble_mass(V).toarray()
        w = np.linalg.eigvalsh(M)
        assert w.min() > 0


class TestElasticity:
    def test_symmetric(self):
        m = unit_square(3)
        V = FunctionSpace(m, 2, ncomp=2)
        lam, mu = lame_parameters(1.0, 0.3)
        K = assemble_elasticity(V, lam, mu)
        assert abs(K - K.T).max() < 1e-10 * abs(K).max()

    def test_rigid_modes_in_kernel_2d(self):
        """Translations and the infinitesimal rotation must be in the
        kernel of the free-floating elasticity operator."""
        m = unit_square(3)
        V = FunctionSpace(m, 2, ncomp=2)
        lam, mu = lame_parameters(1.0, 0.3)
        K = assemble_elasticity(V, lam, mu)
        c = V.scalar_dof_coordinates
        tx = np.zeros(V.num_dofs)
        tx[0::2] = 1.0
        ty = np.zeros(V.num_dofs)
        ty[1::2] = 1.0
        rot = np.zeros(V.num_dofs)
        rot[0::2] = -c[:, 1]
        rot[1::2] = c[:, 0]
        scale = abs(K).max()
        for v in (tx, ty, rot):
            assert np.abs(K @ v).max() < 1e-10 * scale

    def test_rigid_modes_in_kernel_3d(self):
        m = unit_cube(2)
        V = FunctionSpace(m, 1, ncomp=3)
        lam, mu = lame_parameters(1.0, 0.25)
        K = assemble_elasticity(V, lam, mu)
        c = V.scalar_dof_coordinates
        scale = abs(K).max()
        # one translation + one rotation suffice as smoke kernel checks
        t = np.zeros(V.num_dofs)
        t[2::3] = 1.0
        rot = np.zeros(V.num_dofs)
        rot[0::3] = -c[:, 1]
        rot[1::3] = c[:, 0]
        for v in (t, rot):
            assert np.abs(K @ v).max() < 1e-9 * scale

    def test_spd_after_clamping(self):
        m = unit_square(3)
        V = FunctionSpace(m, 1, ncomp=2)
        lam, mu = lame_parameters(1.0, 0.3)
        K = assemble_elasticity(V, lam, mu)
        bd = V.boundary_dofs(lambda x: x[:, 0] < 1e-12)
        Kff, _, _ = restrict_to_free(K, np.zeros(V.num_dofs), bd)
        w = np.linalg.eigvalsh(Kff.toarray())
        assert w.min() > 0

    def test_rejects_scalar_space(self):
        V = FunctionSpace(unit_square(2), 1)
        with pytest.raises(FEMError):
            assemble_elasticity(V, 1.0, 1.0)


class TestLoad:
    def test_constant_load_total(self):
        V = FunctionSpace(unit_square(4), 2)
        b = assemble_load(V, 3.0)
        # Σ_i (f, φ_i) = ∫ f = 3 |Ω|
        assert b.sum() == pytest.approx(3.0)

    def test_vector_load(self):
        V = FunctionSpace(unit_square(3), 1, ncomp=2)
        b = assemble_load(V, np.array([0.0, -1.0]))
        assert b[0::2].sum() == pytest.approx(0.0)
        assert b[1::2].sum() == pytest.approx(-1.0)

    def test_bad_constant_vector(self):
        V = FunctionSpace(unit_square(2), 1, ncomp=2)
        with pytest.raises(FEMError):
            assemble_load(V, np.array([1.0, 2.0, 3.0]))


class TestDirichlet:
    def test_apply_dirichlet_symmetric(self):
        m = unit_square(3)
        V = FunctionSpace(m, 1)
        A = assemble_stiffness(V)
        b = assemble_load(V, 1.0)
        Abc, bbc = apply_dirichlet(A, b, V.boundary_dofs(), 0.0)
        assert abs(Abc - Abc.T).max() < 1e-14

    def test_apply_dirichlet_nonzero_values(self):
        m = unit_square(4)
        V = FunctionSpace(m, 1)
        A = assemble_stiffness(V)
        b = assemble_load(V, 0.0)
        g = V.interpolate(lambda x: x[:, 0])          # harmonic
        bd = V.boundary_dofs()
        Abc, bbc = apply_dirichlet(A, b, bd, g[bd])
        u = spla.spsolve(Abc.tocsc(), bbc)
        assert np.allclose(u, g, atol=1e-10)

    def test_restrict_matches_apply(self):
        m = unit_square(3)
        V = FunctionSpace(m, 2)
        A = assemble_stiffness(V)
        b = assemble_load(V, 1.0)
        bd = V.boundary_dofs()
        Abc, bbc = apply_dirichlet(A, b, bd, 0.0)
        Aff, bf, free = restrict_to_free(A, b, bd)
        u1 = spla.spsolve(Abc.tocsc(), bbc)
        u2 = np.zeros(V.num_dofs)
        u2[free] = spla.spsolve(Aff.tocsc(), bf)
        assert np.allclose(u1, u2, atol=1e-10)
