"""Tests for point evaluation and norms."""

import numpy as np
import pytest

from repro.common.errors import FEMError
from repro.fem import (
    FunctionSpace,
    PointLocator,
    assemble_stiffness,
    energy_norm,
    evaluate,
    h1_seminorm,
    l2_error,
    l2_norm,
)
from repro.mesh import unit_cube, unit_square


class TestPointLocator:
    def test_locates_centroids(self):
        m = unit_square(5)
        loc = PointLocator(m)
        cells, bary = loc.locate(m.cell_centroids())
        assert np.array_equal(cells, np.arange(m.num_cells))
        assert np.allclose(bary.sum(axis=1), 1.0)

    def test_outside_returns_minus_one(self):
        m = unit_square(3)
        cells, _ = PointLocator(m).locate([[2.0, 2.0]])
        assert cells[0] == -1

    def test_vertices_found(self):
        m = unit_square(4)
        cells, bary = PointLocator(m).locate(m.vertices)
        assert np.all(cells >= 0)

    def test_3d(self):
        m = unit_cube(3)
        cells, bary = PointLocator(m).locate([[0.51, 0.49, 0.52]])
        assert cells[0] >= 0
        assert np.all(bary[0] >= 0)


class TestEvaluate:
    @pytest.mark.parametrize("k", [1, 2, 3])
    def test_exact_for_degree_k(self, k, rng):
        m = unit_square(4)
        V = FunctionSpace(m, k)
        u = V.interpolate(lambda x: (x[:, 0] + 0.5 * x[:, 1]) ** k)
        pts = rng.random((10, 2))
        vals = evaluate(V, u, pts)
        exact = (pts[:, 0] + 0.5 * pts[:, 1]) ** k
        assert np.allclose(vals, exact, atol=1e-11)

    def test_vector_space(self):
        m = unit_square(3)
        V = FunctionSpace(m, 1, ncomp=2)
        u = V.interpolate(lambda x: np.column_stack([x[:, 0], -x[:, 1]]))
        vals = evaluate(V, u, [[0.25, 0.75]])
        assert np.allclose(vals, [[0.25, -0.75]])

    def test_outside_raises(self):
        m = unit_square(2)
        V = FunctionSpace(m, 1)
        with pytest.raises(FEMError):
            evaluate(V, np.zeros(V.num_dofs), [[5.0, 5.0]])

    def test_wrong_length_raises(self):
        V = FunctionSpace(unit_square(2), 1)
        with pytest.raises(FEMError):
            evaluate(V, np.zeros(3), [[0.5, 0.5]])


class TestNorms:
    def test_l2_of_constant(self):
        V = FunctionSpace(unit_square(4), 2)
        u = V.interpolate(lambda x: np.full(len(x), 3.0))
        assert l2_norm(V, u) == pytest.approx(3.0)

    def test_l2_of_linear(self):
        V = FunctionSpace(unit_square(4), 2)
        u = V.interpolate(lambda x: x[:, 0])
        assert l2_norm(V, u) == pytest.approx(np.sqrt(1.0 / 3.0))

    def test_h1_seminorm_linear(self):
        V = FunctionSpace(unit_square(4), 3)
        u = V.interpolate(lambda x: 2 * x[:, 0] - x[:, 1])
        assert h1_seminorm(V, u) == pytest.approx(np.sqrt(5.0))

    def test_h1_constant_zero(self):
        V = FunctionSpace(unit_square(3), 1)
        u = np.ones(V.num_dofs)
        assert h1_seminorm(V, u) == pytest.approx(0.0, abs=1e-10)

    def test_energy_norm_matches_h1_for_laplacian(self):
        m = unit_square(4)
        V = FunctionSpace(m, 2)
        A = assemble_stiffness(V)
        u = V.interpolate(lambda x: x[:, 0] * x[:, 1])
        assert energy_norm(A, u) == pytest.approx(h1_seminorm(V, u),
                                                  rel=1e-10)

    def test_l2_error_zero_for_interpolant(self):
        V = FunctionSpace(unit_square(3), 2)
        f = lambda x: x[:, 0] ** 2          # noqa: E731
        u = V.interpolate(f)
        assert l2_error(V, u, f) == pytest.approx(0.0, abs=1e-12)

    def test_vector_l2(self):
        V = FunctionSpace(unit_square(3), 1, ncomp=2)
        u = V.interpolate(lambda x: np.column_stack(
            [np.ones(len(x)), np.zeros(len(x))]))
        assert l2_norm(V, u) == pytest.approx(1.0)
