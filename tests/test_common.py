"""Tests for common utilities: timers, validation, ASCII plotting."""

import time

import numpy as np
import pytest
import scipy.sparse as sp

from repro.common import PhaseTimer, Timer, as_1d_float, as_csr, check_square, check_symmetric, require
from repro.common.asciiplot import semilogy, sparsity, table
from repro.common.errors import MeshError, ReproError


class TestPhaseTimer:
    def test_accumulates(self):
        t = PhaseTimer()
        with t.phase("a"):
            time.sleep(0.01)
        with t.phase("a"):
            pass
        assert t.seconds("a") >= 0.01
        assert t.counts["a"] == 2

    def test_add(self):
        t = PhaseTimer()
        t.add("x", 1.5)
        t.add("x", 0.5)
        assert t.seconds("x") == pytest.approx(2.0)

    def test_total(self):
        t = PhaseTimer()
        t.add("a", 1.0)
        t.add("b", 2.0)
        assert t.total() == pytest.approx(3.0)

    def test_merge_max(self):
        t1, t2 = PhaseTimer(), PhaseTimer()
        t1.add("a", 1.0)
        t2.add("a", 3.0)
        t2.add("b", 0.5)
        t1.merge_max(t2)
        assert t1.seconds("a") == 3.0
        assert t1.seconds("b") == 0.5

    def test_unknown_phase_zero(self):
        assert PhaseTimer().seconds("never") == 0.0

    def test_timer_context(self):
        with Timer() as t:
            time.sleep(0.005)
        assert t.elapsed >= 0.005


class TestValidation:
    def test_require(self):
        require(True, ReproError, "fine")
        with pytest.raises(MeshError, match="boom"):
            require(False, MeshError, "boom")

    def test_as_1d_float(self):
        out = as_1d_float([1, 2, 3])
        assert out.dtype == np.float64
        with pytest.raises(ReproError):
            as_1d_float(np.zeros((2, 2)))

    def test_as_csr(self):
        A = as_csr(np.eye(3))
        assert sp.issparse(A) and A.format == "csr"
        assert as_csr(sp.eye(3, format="coo")).format == "csr"
        with pytest.raises(ReproError):
            as_csr(np.zeros(3))

    def test_check_square(self):
        check_square(np.eye(2))
        with pytest.raises(ReproError):
            check_square(np.zeros((2, 3)))

    def test_check_symmetric(self):
        check_symmetric(sp.eye(3))
        A = sp.csr_matrix(np.array([[1.0, 2.0], [0.0, 1.0]]))
        with pytest.raises(ReproError):
            check_symmetric(A)


class TestAsciiPlot:
    def test_semilogy_contains_labels(self):
        out = semilogy({"run A": [1, 0.1, 0.01], "run B": [1, 0.5]})
        assert "run A" in out and "run B" in out
        assert "#iterations" in out

    def test_semilogy_empty(self):
        assert "(no data)" in semilogy({})

    def test_semilogy_nonpositive(self):
        assert "no positive" in semilogy({"a": [0.0, -1.0]})

    def test_table_alignment(self):
        out = table(["name", "value"], [["x", 1.5], ["longer", 22]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert len(set(len(ln) for ln in lines)) == 1  # equal widths

    def test_table_title(self):
        out = table(["a"], [[1]], title="TITLE")
        assert out.startswith("TITLE")

    def test_table_scientific_format(self):
        out = table(["v"], [[1.23e-8]])
        assert "1.23e-08" in out

    def test_sparsity_renders(self):
        M = sp.eye(10, format="csr")
        out = sparsity(M, width=20)
        assert "#" in out
        assert out.count("\n") >= 3
