"""Tests for mesh I/O (native format + VTK export)."""

import numpy as np
import pytest

from repro.common.errors import MeshError
from repro.mesh import load_mesh, refine_uniform, save_mesh, unit_cube, unit_square, write_vtk


class TestNativeFormat:
    @pytest.mark.parametrize("gen", [lambda: unit_square(4),
                                     lambda: unit_cube(2),
                                     lambda: refine_uniform(unit_square(2))])
    def test_roundtrip(self, gen, tmp_path):
        m = gen()
        p = tmp_path / "mesh.msh.txt"
        save_mesh(m, p)
        m2 = load_mesh(p)
        assert np.allclose(m.vertices, m2.vertices)
        assert np.array_equal(m.cells, m2.cells)

    def test_bad_header(self, tmp_path):
        p = tmp_path / "bad.txt"
        p.write_text("not a mesh\n1 2 3\n")
        with pytest.raises(MeshError):
            load_mesh(p)

    def test_malformed_sizes(self, tmp_path):
        p = tmp_path / "bad.txt"
        p.write_text("repro-simplex-mesh 1\n2 5\n")
        with pytest.raises(MeshError):
            load_mesh(p)


class TestVTK:
    def test_2d_structure(self, tmp_path):
        m = unit_square(3)
        p = tmp_path / "m.vtk"
        write_vtk(m, p, point_data={"f": np.arange(m.num_vertices,
                                                   dtype=float)},
                  cell_data={"part": np.zeros(m.num_cells)})
        text = p.read_text()
        assert "DATASET UNSTRUCTURED_GRID" in text
        assert f"POINTS {m.num_vertices} double" in text
        assert f"CELLS {m.num_cells}" in text
        assert "SCALARS f double 1" in text
        assert "SCALARS part double 1" in text
        # triangles are VTK type 5
        assert "\n5\n" in text

    def test_3d_cell_type(self, tmp_path):
        m = unit_cube(2)
        p = tmp_path / "m.vtk"
        write_vtk(m, p)
        assert "\n10\n" in p.read_text()      # tetrahedron type

    def test_vector_point_data_padded(self, tmp_path):
        m = unit_square(2)
        p = tmp_path / "m.vtk"
        write_vtk(m, p, point_data={"disp": np.ones((m.num_vertices, 2))})
        assert "VECTORS disp double" in p.read_text()

    def test_bad_point_data_shape(self, tmp_path):
        m = unit_square(2)
        with pytest.raises(MeshError):
            write_vtk(m, tmp_path / "x.vtk",
                      point_data={"f": np.zeros(3)})

    def test_bad_cell_data_shape(self, tmp_path):
        m = unit_square(2)
        with pytest.raises(MeshError):
            write_vtk(m, tmp_path / "x.vtk",
                      cell_data={"f": np.zeros(3)})
