"""Tests for the direct-solver substrate: all backends + distributed."""

import numpy as np
import pytest
import scipy.sparse as sp
import scipy.sparse.linalg as spla
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import SolverError
from repro.fem import FunctionSpace, assemble_load, assemble_stiffness, restrict_to_free
from repro.mesh import unit_square
from repro.mpi import run_spmd
from repro.solvers import (
    BACKENDS,
    DistributedCholesky,
    SparseLDL,
    bandwidth,
    elimination_tree,
    factorize,
    reverse_cuthill_mckee,
)


@pytest.fixture(scope="module")
def spd_system():
    m = unit_square(8)
    V = FunctionSpace(m, 2)
    A = assemble_stiffness(V)
    b = assemble_load(V, 1.0)
    Aff, bf, _ = restrict_to_free(A, b, V.boundary_dofs())
    xref = spla.spsolve(Aff.tocsc(), bf)
    return Aff.tocsr(), bf, xref


class TestBackends:
    @pytest.mark.parametrize("method", BACKENDS)
    def test_solve_vector(self, spd_system, method):
        A, b, xref = spd_system
        f = factorize(A, method)
        x = f.solve(b)
        assert np.linalg.norm(x - xref) <= 1e-10 * np.linalg.norm(xref)

    @pytest.mark.parametrize("method", BACKENDS)
    def test_solve_block(self, spd_system, method):
        A, b, xref = spd_system
        f = factorize(A, method)
        X = f.solve(np.column_stack([b, -b, 2 * b]))
        assert np.allclose(X[:, 1], -xref, atol=1e-8 * abs(xref).max())
        assert np.allclose(X[:, 2], 2 * xref, atol=1e-8 * abs(xref).max())

    @pytest.mark.parametrize("method", BACKENDS)
    def test_nnz_factor_positive(self, spd_system, method):
        A, _, _ = spd_system
        assert factorize(A, method).nnz_factor > 0

    def test_unknown_backend(self, spd_system):
        A, _, _ = spd_system
        with pytest.raises(SolverError):
            factorize(A, "mumps")

    def test_shift_regularises_singular(self):
        """A singular Neumann-like matrix factorises once shifted."""
        n = 10
        A = sp.diags([np.full(n - 1, -1.0), np.full(n, 2.0),
                      np.full(n - 1, -1.0)], [-1, 0, 1]).tocsr()
        A = A.tolil()
        A[0, 0] = 1.0
        A[-1, -1] = 1.0              # 1D pure-Neumann Laplacian: singular
        A = A.tocsr()
        with pytest.raises(SolverError):
            factorize(A, "ldl")
        f = factorize(A, "ldl", shift=1e-8)
        x = f.solve(np.ones(n))
        assert np.isfinite(x).all()


class TestSparseLDL:
    def test_matches_dense(self, rng):
        n = 40
        M = rng.standard_normal((n, n))
        A = sp.csr_matrix(M @ M.T + n * np.eye(n))
        ldl = SparseLDL(A)
        b = rng.standard_normal(n)
        assert np.allclose(ldl.solve(b), np.linalg.solve(A.toarray(), b))

    def test_inertia_spd(self, spd_system):
        A, _, _ = spd_system
        ldl = SparseLDL(A)
        pos, neg, zero = ldl.inertia()
        assert (pos, neg, zero) == (A.shape[0], 0, 0)

    def test_inertia_indefinite(self):
        A = sp.csr_matrix(np.diag([2.0, -3.0, 1.0]))
        pos, neg, zero = SparseLDL(A).inertia()
        assert (pos, neg) == (2, 1)

    def test_permutation_improves_fill(self, spd_system):
        A, _, _ = spd_system
        plain = SparseLDL(A)
        rcm = SparseLDL(A, perm=reverse_cuthill_mckee(A))
        # arrow-free FEM matrix: RCM should not *hurt* much
        assert rcm.nnz_factor <= 3 * plain.nnz_factor

    def test_zero_pivot_raises(self):
        A = sp.csr_matrix(np.array([[1.0, 1.0], [1.0, 1.0]]))
        with pytest.raises(SolverError):
            SparseLDL(A)

    def test_elimination_tree_chain(self):
        # tridiagonal matrix: etree is a path
        n = 6
        A = sp.diags([np.ones(n - 1), 3 * np.ones(n), np.ones(n - 1)],
                     [-1, 0, 1]).tocsc()
        parent = elimination_tree(sp.triu(A, format="csc"))
        assert parent.tolist() == [1, 2, 3, 4, 5, -1]

    @given(st.integers(min_value=2, max_value=25), st.integers(0, 10))
    @settings(max_examples=15, deadline=None)
    def test_random_spd_property(self, n, seed):
        rng = np.random.default_rng(seed)
        M = rng.standard_normal((n, n))
        dense = M @ M.T + n * np.eye(n)
        # sparsify: drop small entries symmetrically, keep diagonal dominance
        dense[np.abs(dense) < 0.5] = 0.0
        dense += n * np.eye(n)
        A = sp.csr_matrix(dense)
        b = rng.standard_normal(n)
        x = SparseLDL(A).solve(b)
        assert np.allclose(A @ x, b, atol=1e-8 * max(1, abs(b).max()))


class TestOrderings:
    def test_rcm_is_permutation(self, spd_system):
        A, _, _ = spd_system
        p = reverse_cuthill_mckee(A)
        assert np.array_equal(np.sort(p), np.arange(A.shape[0]))

    def test_rcm_reduces_bandwidth(self, spd_system):
        A, _, _ = spd_system
        p = reverse_cuthill_mckee(A)
        assert bandwidth(A[p][:, p]) < bandwidth(A)

    def test_rcm_disconnected(self):
        A = sp.block_diag([np.array([[2.0, 1], [1, 2]])] * 3).tocsr()
        p = reverse_cuthill_mckee(A)
        assert np.array_equal(np.sort(p), np.arange(6))

    def test_bandwidth_diagonal(self):
        assert bandwidth(sp.eye(5, format="csr")) == 0


class TestDistributedCholesky:
    def _reference(self, n, seed=0):
        rng = np.random.default_rng(seed)
        M = rng.standard_normal((n, n))
        E = M @ M.T + n * np.eye(n)
        b = rng.standard_normal(n)
        return E, b, np.linalg.solve(E, b)

    @pytest.mark.parametrize("P", [1, 2, 3, 5])
    def test_matches_numpy(self, P):
        n = 29
        E, b, xref = self._reference(n)
        rs = np.linspace(0, n, P + 1).astype(np.int64)

        def fn(comm):
            p = comm.rank
            f = DistributedCholesky(comm, rs, E[rs[p]:rs[p + 1]])
            return f.solve(b[rs[p]:rs[p + 1]])

        x = np.concatenate(run_spmd(P, fn))
        assert np.linalg.norm(x - xref) <= 1e-10 * np.linalg.norm(xref)

    def test_uneven_blocks(self):
        n = 17
        E, b, xref = self._reference(n, seed=3)
        rs = np.array([0, 2, 11, 17])

        def fn(comm):
            p = comm.rank
            f = DistributedCholesky(comm, rs, E[rs[p]:rs[p + 1]])
            return f.solve(b[rs[p]:rs[p + 1]])

        x = np.concatenate(run_spmd(3, fn))
        assert np.allclose(x, xref)

    def test_empty_block(self):
        n = 8
        E, b, xref = self._reference(n, seed=5)
        rs = np.array([0, 4, 4, 8])       # middle master owns nothing

        def fn(comm):
            p = comm.rank
            f = DistributedCholesky(comm, rs, E[rs[p]:rs[p + 1]])
            return f.solve(b[rs[p]:rs[p + 1]])

        parts = run_spmd(3, fn)
        assert np.allclose(np.concatenate(parts), xref)

    def test_not_spd_raises(self):
        E = -np.eye(4)
        rs = np.array([0, 2, 4])

        def fn(comm):
            p = comm.rank
            DistributedCholesky(comm, rs, E[rs[p]:rs[p + 1]])

        with pytest.raises(SolverError):
            run_spmd(2, fn)

    def test_shape_validation(self):
        def fn(comm):
            DistributedCholesky(comm, np.array([0, 2, 4]), np.zeros((3, 4)))

        with pytest.raises(SolverError):
            run_spmd(2, fn)

    def test_multiple_solves_reuse_factorization(self):
        n = 12
        E, b, xref = self._reference(n, seed=7)
        rs = np.array([0, 6, 12])

        def fn(comm):
            p = comm.rank
            f = DistributedCholesky(comm, rs, E[rs[p]:rs[p + 1]])
            x1 = f.solve(b[rs[p]:rs[p + 1]])
            x2 = f.solve(2 * b[rs[p]:rs[p + 1]])
            return x1, x2

        parts = run_spmd(2, fn)
        x1 = np.concatenate([p[0] for p in parts])
        x2 = np.concatenate([p[1] for p in parts])
        assert np.allclose(x1, xref)
        assert np.allclose(x2, 2 * xref)
