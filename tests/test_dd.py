"""Tests for overlap growth, partition of unity, dof maps, decomposition."""

import numpy as np
import pytest

from repro.common.errors import DecompositionError
from repro.dd import (
    Decomposition,
    Problem,
    chi_tilde,
    grow_overlap,
    map_scalar_dofs,
    vertex_layers,
)
from repro.fem import FunctionSpace, channels_and_inclusions
from repro.fem.forms import DiffusionForm, ElasticityForm
from repro.mesh import unit_cube, unit_square
from repro.partition import partition_mesh


class TestOverlapGrowth:
    def test_delta_zero_is_partition(self):
        m = unit_square(6)
        part = partition_mesh(m, 4, method="rcb")
        cells, layers = grow_overlap(m, part, 0, 0)
        assert np.array_equal(cells, np.flatnonzero(part == 0))
        assert np.all(layers == 0)

    def test_monotone_growth(self):
        m = unit_square(8)
        part = partition_mesh(m, 4, method="rcb")
        prev = set()
        for delta in range(4):
            cells, layers = grow_overlap(m, part, 1, delta)
            s = set(cells.tolist())
            assert prev.issubset(s)
            assert layers.max() <= delta
            prev = s

    def test_layers_on_structured_strip(self):
        """On a strip split in half, layer-1 cells touch the interface."""
        m = unit_square(8)
        part = (m.cell_centroids()[:, 0] > 0.5).astype(int)
        cells, layers = grow_overlap(m, part, 0, 1)
        new = cells[layers == 1]
        # every new cell shares a vertex with the left half
        left_vertices = set(m.cells[part == 0].ravel().tolist())
        for c in new:
            assert set(m.cells[c].tolist()) & left_vertices

    def test_whole_domain_limit(self):
        m = unit_square(4)
        part = partition_mesh(m, 2, method="rcb")
        cells, _ = grow_overlap(m, part, 0, 50)
        assert cells.size == m.num_cells

    def test_errors(self):
        m = unit_square(4)
        part = np.zeros(m.num_cells, dtype=int)
        with pytest.raises(DecompositionError):
            grow_overlap(m, part, 1, 1)        # empty subdomain
        with pytest.raises(DecompositionError):
            grow_overlap(m, part[:-1], 0, 1)   # bad shape
        with pytest.raises(DecompositionError):
            grow_overlap(m, part, 0, -1)

    def test_vertex_layers_minimum(self):
        m = unit_square(6)
        part = (m.cell_centroids()[:, 0] > 0.5).astype(int)
        cells, layers = grow_overlap(m, part, 0, 2)
        verts, vlayer = vertex_layers(m, cells, layers)
        # interface vertices belong to layer-0 cells => layer 0
        assert vlayer.min() == 0
        assert vlayer.max() <= 2


class TestPartitionOfUnity:
    def _chi(self, delta=2, n=8, nparts=4):
        m = unit_square(n)
        part = partition_mesh(m, nparts, method="rcb")
        overlaps = [grow_overlap(m, part, i, delta) for i in range(nparts)]
        return m, chi_tilde(m, overlaps, delta)

    def test_range(self):
        _, (per_sub, total) = self._chi()
        for verts, vals in per_sub:
            assert np.all(vals >= 0) and np.all(vals <= 1)
        assert np.all(total >= 1 - 1e-12)

    def test_sum_equals_total(self):
        m, (per_sub, total) = self._chi()
        acc = np.zeros(m.num_vertices)
        for verts, vals in per_sub:
            acc[verts] += vals
        assert np.allclose(acc, total)

    def test_interior_value_one(self):
        """Deep inside T_i^0 (away from all overlaps) χ̃_i = total = 1."""
        m, (per_sub, total) = self._chi(delta=1, n=12, nparts=2)
        verts, vals = per_sub[0]
        deep = vals == 1.0
        assert deep.any()
        assert np.all(total[verts[deep & (total[verts] == 1.0)]] == 1.0)

    def test_delta_zero_rejected(self):
        m = unit_square(4)
        part = partition_mesh(m, 2, method="rcb")
        overlaps = [grow_overlap(m, part, i, 0) for i in range(2)]
        with pytest.raises(DecompositionError):
            chi_tilde(m, overlaps, 0)


class TestDofMap:
    @pytest.mark.parametrize("gen,k", [(lambda: unit_square(4), 1),
                                       (lambda: unit_square(4), 2),
                                       (lambda: unit_square(3), 3),
                                       (lambda: unit_square(3), 4),
                                       (lambda: unit_cube(2), 2),
                                       (lambda: unit_cube(2), 3)])
    def test_coordinates_match(self, gen, k):
        m = gen()
        V = FunctionSpace(m, k)
        ids = np.arange(0, m.num_cells, 2)
        sub, vmap, cmap = m.extract_cells(ids)
        Vs = FunctionSpace(sub, k)
        gmap = map_scalar_dofs(Vs, V, vmap, cmap)
        assert np.allclose(Vs.scalar_dof_coordinates,
                           V.scalar_dof_coordinates[gmap], atol=1e-12)

    def test_injective(self):
        m = unit_square(4)
        V = FunctionSpace(m, 3)
        sub, vmap, cmap = m.extract_cells(np.arange(10))
        Vs = FunctionSpace(sub, 3)
        gmap = map_scalar_dofs(Vs, V, vmap, cmap)
        assert len(np.unique(gmap)) == gmap.size

    def test_degree_mismatch(self):
        m = unit_square(3)
        sub, vmap, cmap = m.extract_cells(np.arange(4))
        with pytest.raises(DecompositionError):
            map_scalar_dofs(FunctionSpace(sub, 1), FunctionSpace(m, 2),
                            vmap, cmap)


class TestDecomposition:
    def test_dirichlet_matrices_match_global(self, diffusion_decomposition):
        dec = diffusion_decomposition
        A = dec.problem.matrix()
        for s in dec.subdomains:
            ref = A[s.dofs][:, s.dofs]
            assert abs(s.A_dir - ref).max() <= 1e-12 * abs(ref).max()

    def test_partition_of_unity_identity(self, diffusion_decomposition):
        dec = diffusion_decomposition
        acc = np.zeros(dec.problem.num_free)
        for s in dec.subdomains:
            np.add.at(acc, s.dofs, s.d)
        assert np.abs(acc - 1).max() < 1e-12

    def test_matvec_equals_global(self, diffusion_decomposition, rng):
        dec = diffusion_decomposition
        A = dec.problem.matrix()
        x = rng.standard_normal(dec.problem.num_free)
        y = dec.matvec(x)
        assert np.linalg.norm(y - A @ x) <= 1e-10 * np.linalg.norm(A @ x)

    def test_matvec_local_consistency(self, diffusion_decomposition, rng):
        """Every subdomain's local result equals R_i(Ax)."""
        dec = diffusion_decomposition
        A = dec.problem.matrix()
        x = rng.standard_normal(dec.problem.num_free)
        Ax = A @ x
        ylist = dec.matvec_local(dec.restrict(x))
        scale = np.abs(Ax).max()
        for s, yi in zip(dec.subdomains, ylist):
            assert np.abs(yi - Ax[s.dofs]).max() < 1e-10 * max(scale, 1)

    def test_exchange_alignment_symmetric(self, diffusion_decomposition):
        dec = diffusion_decomposition
        for s in dec.subdomains:
            for j in s.neighbors:
                other = dec.subdomains[j]
                assert s.index in other.neighbors
                # aligned by global dof
                assert np.array_equal(s.dofs[s.shared[j]],
                                      other.dofs[other.shared[s.index]])

    def test_restrict_combine_roundtrip(self, diffusion_decomposition, rng):
        dec = diffusion_decomposition
        x = rng.standard_normal(dec.problem.num_free)
        assert np.allclose(dec.combine(dec.restrict(x)), x)

    def test_neumann_symmetric_psd(self, elasticity_decomposition):
        for s in elasticity_decomposition.subdomains:
            An = s.A_neu.toarray()
            assert np.allclose(An, An.T, atol=1e-8 * abs(An).max())
            w = np.linalg.eigvalsh(An)
            assert w.min() > -1e-8 * abs(w).max()

    def test_elasticity_dirichlet_matches(self, elasticity_decomposition):
        dec = elasticity_decomposition
        A = dec.problem.matrix()
        for s in dec.subdomains:
            ref = A[s.dofs][:, s.dofs]
            assert abs(s.A_dir - ref).max() <= 1e-11 * abs(ref).max()

    def test_3d_decomposition(self):
        m = unit_cube(3)
        kappa = channels_and_inclusions(m, seed=0)
        prob = Problem(m, DiffusionForm(degree=1, kappa=kappa))
        part = partition_mesh(m, 4, seed=0)
        dec = Decomposition(prob, part, delta=1)
        A = prob.matrix()
        x = np.random.default_rng(0).standard_normal(prob.num_free)
        assert np.allclose(dec.matvec(x), A @ x)

    def test_delta_validation(self, diffusion_problem):
        part = partition_mesh(diffusion_problem.mesh, 4)
        with pytest.raises(DecompositionError):
            Decomposition(diffusion_problem, part, delta=0)

    def test_part_shape_validation(self, diffusion_problem):
        with pytest.raises(DecompositionError):
            Decomposition(diffusion_problem, np.zeros(3, dtype=int), delta=1)

    def test_scaled_problem_matvec(self):
        m = unit_square(10)
        prob = Problem(m, DiffusionForm(degree=2, kappa=None),
                       scaling="jacobi")
        part = partition_mesh(m, 4, seed=0)
        dec = Decomposition(prob, part, delta=1)
        A = prob.matrix()
        assert np.allclose(A.diagonal(), 1.0)   # scaled to unit diagonal
        x = np.random.default_rng(1).standard_normal(prob.num_free)
        assert np.allclose(dec.matvec(x), A @ x)


class TestProblem:
    def test_rejects_pure_neumann(self):
        m = unit_square(4)
        with pytest.raises(DecompositionError):
            Problem(m, DiffusionForm(degree=1),
                    dirichlet=lambda x: np.zeros(len(x), dtype=bool))

    def test_extend_roundtrip(self, diffusion_problem):
        x = np.arange(diffusion_problem.num_free, dtype=float)
        full = diffusion_problem.extend(x)
        assert np.array_equal(full[diffusion_problem.free], x)
        assert np.all(full[diffusion_problem.dirichlet_dofs] == 0)

    def test_explicit_dof_dirichlet(self):
        m = unit_square(4)
        prob = Problem(m, DiffusionForm(degree=1), dirichlet=[0, 1, 2])
        assert np.array_equal(prob.dirichlet_dofs, [0, 1, 2])
