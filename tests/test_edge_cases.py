"""Edge-case coverage batch: coefficients, forms, meter, SPMD layout."""

import numpy as np
import pytest

from repro.common.errors import FEMError
from repro.fem import (
    HARD_PHASE,
    KAPPA_MAX,
    SOFT_PHASE,
    channels_and_inclusions,
    constant_field,
    lame_parameters,
    layered_elasticity,
)
from repro.fem.forms import DiffusionForm, ElasticityForm
from repro.mesh import unit_cube, unit_square
from repro.mpi import Meter, run_spmd
from repro.mpi.meter import RankStats


class TestCoefficients:
    def test_channels_within_bounds(self):
        m = unit_square(12)
        k = channels_and_inclusions(m, seed=5)
        assert k.min() >= 1.0
        assert k.max() <= KAPPA_MAX
        assert k.max() / k.min() > 1e4          # high contrast achieved

    def test_deterministic_per_seed(self):
        m = unit_square(8)
        assert np.array_equal(channels_and_inclusions(m, seed=3),
                              channels_and_inclusions(m, seed=3))
        assert not np.array_equal(channels_and_inclusions(m, seed=3),
                                  channels_and_inclusions(m, seed=4))

    def test_3d_channels(self):
        m = unit_cube(4)
        k = channels_and_inclusions(m, seed=0)
        assert k.shape == (m.num_cells,)

    def test_layered_elasticity_two_phases(self):
        m = unit_square(10)
        lam, mu = layered_elasticity(m, n_layers=4)
        lam_h, mu_h = lame_parameters(*HARD_PHASE)
        lam_s, mu_s = lame_parameters(*SOFT_PHASE)
        assert set(np.round(np.unique(mu), 6)) == \
            set(np.round([mu_h, mu_s], 6))
        assert np.isclose(sorted(np.unique(lam))[0], min(lam_h, lam_s))

    def test_layered_axis(self):
        m = unit_square(10)
        lam_x, _ = layered_elasticity(m, n_layers=2, axis=0)
        lam_y, _ = layered_elasticity(m, n_layers=2, axis=1)
        assert not np.array_equal(lam_x, lam_y)

    def test_lame_conversion(self):
        lam, mu = lame_parameters(2.0e11, 0.25)
        assert mu == pytest.approx(8.0e10)
        assert lam == pytest.approx(8.0e10)

    def test_constant_field(self):
        m = unit_square(4)
        f = constant_field(m, 3.5)
        assert f.shape == (m.num_cells,)
        assert np.all(f == 3.5)


class TestForms:
    def test_diffusion_restriction(self):
        m = unit_square(6)
        kappa = np.arange(m.num_cells, dtype=float) + 1
        form = DiffusionForm(degree=1, kappa=kappa)
        sub, vmap, cmap = m.extract_cells(np.arange(0, m.num_cells, 3))
        space = form.make_space(sub)
        A = form.assemble_matrix(space, cell_map=cmap)
        # equals assembling with the restricted coefficient directly
        from repro.fem import assemble_stiffness
        A2 = assemble_stiffness(space, kappa[cmap])
        assert abs(A - A2).max() == 0

    def test_diffusion_rejects_vector_space(self):
        m = unit_square(3)
        form = DiffusionForm(degree=1)
        from repro.fem import FunctionSpace
        with pytest.raises(FEMError):
            form.assemble_matrix(FunctionSpace(m, 1, ncomp=2))

    def test_elasticity_default_gravity(self):
        m = unit_square(4)
        form = ElasticityForm(degree=1, lam=1.0, mu=1.0)
        space = form.make_space(m)
        b = form.assemble_rhs(space)
        # gravity acts on the last component only
        assert b[0::2].sum() == pytest.approx(0.0, abs=1e-12)
        assert b[1::2].sum() == pytest.approx(-9.81, rel=1e-10)

    def test_elasticity_space_matches_dim(self):
        m3 = unit_cube(2)
        form = ElasticityForm(degree=1, lam=1.0, mu=1.0)
        assert form.make_space(m3).ncomp == 3


class TestMeter:
    def test_rank_stats_record(self):
        s = RankStats()
        s.record_collective("gather", 100, is_global_sync=False)
        s.record_collective("gather", 50, is_global_sync=True)
        assert s.collectives["gather"] == 2
        assert s.collective_bytes["gather"] == 150
        assert s.global_syncs == 1

    def test_meter_summary_keys(self):
        m = Meter(3)
        out = m.summary()
        assert set(out) == {"messages", "bytes", "collectives",
                            "max_global_syncs"}

    def test_meter_isolated_per_rank(self):
        meter = Meter(3)

        def fn(comm):
            if comm.rank == 0:
                comm.send(np.zeros(4), 1)
            elif comm.rank == 1:
                comm.recv(0)

        run_spmd(3, fn, meter=meter)
        assert meter.stats(0).sends == 1
        assert meter.stats(1).recvs == 1
        assert meter.stats(2).sends == meter.stats(2).recvs == 0


class TestMasterLayoutEdges:
    @pytest.mark.parametrize("N,P", [(7, 3), (9, 4), (5, 5)])
    def test_nondivisible_layouts(self, N, P):
        from repro.core.spmd import build_master_comms

        def fn(comm):
            lay = build_master_comms(comm, P)
            return (lay.group, lay.is_master, lay.split.size)

        out = run_spmd(N, fn)
        masters = [r for r, (_, m, _) in enumerate(out) if m]
        assert len(masters) == P
        # split sizes partition N
        sizes = {}
        for g, _, size in out:
            sizes[g] = size
        assert sum(sizes.values()) == N

    def test_p_equals_n(self):
        """Every rank its own master: splitComms of size 1."""
        from repro.core.spmd import build_master_comms

        def fn(comm):
            lay = build_master_comms(comm, comm.size)
            return lay.is_master and lay.split.size == 1

        assert all(run_spmd(4, fn))


class TestSolverShiftPaths:
    def test_superlu_shift(self):
        import scipy.sparse as sp
        from repro.solvers import factorize
        n = 8
        A = sp.eye(n, format="csr") * 0.0        # zero matrix: singular
        f = factorize(A, "superlu", shift=2.0)
        x = f.solve(np.ones(n))
        assert np.allclose(x, 0.5)

    def test_band_shift(self):
        import scipy.sparse as sp
        from repro.solvers import factorize
        n = 6
        A = sp.diags([np.full(n - 1, -1.0), np.full(n, 1.0),
                      np.full(n - 1, -1.0)], [-1, 0, 1]).tocsr()
        # not SPD without a shift (eigenvalue 1-2cos(k) < 0)
        f = factorize(A, "band", shift=2.0)
        b = np.ones(n)
        x = f.solve(b)
        Ash = A + 2.0 * sp.eye(n)
        assert np.allclose(Ash @ x, b)

    def test_dense_falls_back_to_lu(self):
        from repro.solvers import factorize
        A = np.array([[0.0, 1.0], [1.0, 0.0]])   # symmetric indefinite
        f = factorize(A, "dense")
        assert np.allclose(f.solve(np.array([1.0, 2.0])),
                           np.array([2.0, 1.0]))
