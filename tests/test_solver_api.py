"""Tests for the high-level SchwarzSolver API and the perfmodel."""

import numpy as np
import pytest
import scipy.sparse.linalg as spla

from repro import SchwarzSolver
from repro.common.errors import ReproError
from repro.fem import channels_and_inclusions, layered_elasticity
from repro.fem.forms import DiffusionForm, ElasticityForm
from repro.mesh import rectangle, unit_cube, unit_square
from repro.perfmodel import (
    CURIE,
    MachineModel,
    coarse_operator_report,
    measure_row,
    speedup,
    weak_efficiency,
)


@pytest.fixture(scope="module")
def small_setup():
    mesh = unit_square(20)
    kappa = channels_and_inclusions(mesh, seed=3)
    return mesh, DiffusionForm(degree=2, kappa=kappa)


class TestSchwarzSolver:
    def test_solution_matches_direct(self, small_setup):
        mesh, form = small_setup
        s = SchwarzSolver(mesh, form, num_subdomains=6, nev=6)
        r = s.solve(tol=1e-8)
        assert r.converged
        xref = spla.spsolve(s.problem.matrix().tocsc(), s.problem.rhs())
        xref = s.problem.extend(xref)
        assert np.linalg.norm(r.x - xref) <= 1e-5 * np.linalg.norm(xref)

    def test_one_level_more_iterations(self, small_setup):
        mesh, form = small_setup
        two = SchwarzSolver(mesh, form, num_subdomains=8, nev=6, seed=1)
        one = SchwarzSolver(mesh, form, num_subdomains=8, levels=1, seed=1)
        r2 = two.solve(tol=1e-8, maxiter=300)
        r1 = one.solve(tol=1e-8, maxiter=300)
        assert r2.converged
        assert r2.iterations < r1.iterations

    @pytest.mark.parametrize("pre", ["adef1", "adef2", "bnn", "ras", "asm"])
    def test_preconditioner_choices(self, small_setup, pre):
        mesh, form = small_setup
        s = SchwarzSolver(mesh, form, num_subdomains=4, nev=4,
                          preconditioner=pre)
        r = s.solve(tol=1e-6, maxiter=300)
        assert r.converged

    @pytest.mark.parametrize("krylov", ["gmres", "p1-gmres", "cg"])
    def test_krylov_choices(self, small_setup, krylov):
        mesh, form = small_setup
        pre = "bnn" if krylov == "cg" else "adef1"
        s = SchwarzSolver(mesh, form, num_subdomains=4, nev=4,
                          krylov=krylov, preconditioner=pre)
        r = s.solve(tol=1e-6, maxiter=300)
        assert r.converged

    def test_nicolaides_coarse_space(self, small_setup):
        mesh, form = small_setup
        s = SchwarzSolver(mesh, form, num_subdomains=6, nev=0)
        assert s.coarse_dim == 6      # one constant per subdomain
        r = s.solve(tol=1e-6, maxiter=400)
        assert r.iterations > 0

    def test_tau_threshold(self, small_setup):
        mesh, form = small_setup
        s = SchwarzSolver(mesh, form, num_subdomains=6, nev=10, tau=0.5)
        assert s.coarse_dim <= 60
        for g in s.geneo_results:
            finite = g.eigenvalues[np.isfinite(g.eigenvalues)]
            assert np.all(finite < 0.5) or g.nu == 1

    def test_timer_phases(self, small_setup):
        mesh, form = small_setup
        s = SchwarzSolver(mesh, form, num_subdomains=4, nev=4)
        s.solve(tol=1e-6)
        t = s.timer.as_dict()
        for phase in ("decomposition", "factorization", "deflation",
                      "coarse", "solution"):
            assert phase in t

    def test_explicit_part(self, small_setup):
        mesh, form = small_setup
        part = (mesh.cell_centroids()[:, 0] > 0.5).astype(int)
        s = SchwarzSolver(mesh, form, num_subdomains=2, nev=3, part=part)
        assert s.decomposition.num_subdomains == 2

    def test_elasticity_3d(self):
        mesh = unit_cube(3)
        lam, mu = layered_elasticity(mesh)
        form = ElasticityForm(degree=1, lam=lam, mu=mu)
        s = SchwarzSolver(mesh, form, num_subdomains=4, nev=8,
                          dirichlet=lambda x: x[:, 2] < 1e-9)
        r = s.solve(tol=1e-6, maxiter=200)
        assert r.converged

    def test_errors(self, small_setup):
        mesh, form = small_setup
        with pytest.raises(ReproError):
            SchwarzSolver(mesh, form, num_subdomains=4, levels=3)
        with pytest.raises(ReproError):
            SchwarzSolver(mesh, form, num_subdomains=4, krylov="bicgstab")
        with pytest.raises(ReproError):
            SchwarzSolver(mesh, form, num_subdomains=4,
                          preconditioner="amg")

    def test_scaling_off(self, small_setup):
        mesh, form = small_setup
        s = SchwarzSolver(mesh, form, num_subdomains=4, nev=4, scaling=None)
        r = s.solve(tol=1e-6, maxiter=300)
        assert r.converged

    def test_custom_rhs(self, small_setup):
        mesh, form = small_setup
        s = SchwarzSolver(mesh, form, num_subdomains=4, nev=4)
        rng = np.random.default_rng(0)
        b = rng.standard_normal(s.problem.num_free)
        r = s.solve(b, tol=1e-6, maxiter=300)
        xref = spla.spsolve(s.problem.matrix().tocsc(), b)
        assert np.allclose(r.x[s.problem.free],
                           s.problem.scale * xref if s.problem.scale
                           is not None else xref,
                           atol=1e-4 * abs(xref).max())


class TestPerfModel:
    def test_collective_costs_log_vs_linear(self):
        m = MachineModel()
        # gatherv is O(P); allreduce is O(log P): for large P they diverge
        assert m.collective("gatherv", 64, 1024) > \
            m.collective("allreduce", 64, 1024) * 10

    def test_p2p_monotone_in_bytes(self):
        m = MachineModel()
        assert m.p2p(1000) < m.p2p(100000)

    def test_measure_row(self, small_setup):
        mesh, form = small_setup
        s = SchwarzSolver(mesh, form, num_subdomains=4, nev=4)
        row = measure_row(s, tol=1e-6)
        assert row.N == 4
        assert row.total > 0
        assert row.iterations > 0

    def test_speedup_and_efficiency(self):
        from repro.perfmodel import ScalingRow
        rows = [ScalingRow(4, 4.0, 4.0, 2.0, 10, 1000),
                ScalingRow(8, 2.0, 2.0, 1.0, 10, 1000)]
        sp_ = speedup(rows)
        assert sp_[0] == 1.0 and sp_[1] == pytest.approx(2.0)
        wrows = [ScalingRow(4, 4.0, 4.0, 2.0, 10, 1000),
                 ScalingRow(8, 4.0, 4.0, 2.0, 10, 2000)]
        eff = weak_efficiency(wrows)
        assert eff[1] == pytest.approx(1.0)

    def test_coarse_operator_report(self, small_setup):
        mesh, form = small_setup
        s = SchwarzSolver(mesh, form, num_subdomains=6, nev=4)
        rep = coarse_operator_report(s, num_masters=2)
        assert rep.dim_e == s.coarse_dim
        assert rep.avg_neighbors > 0
        assert rep.nnz_factor > 0
        assert rep.time > 0
