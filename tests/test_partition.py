"""Tests for the multilevel partitioner and metrics."""

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import PartitionError
from repro.mesh import unit_cube, unit_square
from repro.partition import (
    edge_cut,
    imbalance,
    multilevel_bisect,
    neighbour_counts,
    part_weights,
    partition_graph,
    partition_mesh,
    partition_rcb,
    parts_connected,
)


def path_graph(n):
    rows = np.arange(n - 1)
    cols = rows + 1
    data = np.ones(n - 1)
    g = sp.coo_matrix((data, (rows, cols)), shape=(n, n))
    return (g + g.T).tocsr()


def grid_graph(nx, ny):
    import networkx as nx_mod
    g = nx_mod.grid_2d_graph(nx, ny)
    return sp.csr_matrix(nx_mod.to_scipy_sparse_array(g))


class TestBisection:
    def test_path_graph_cut_is_one(self):
        g = path_graph(64)
        side = multilevel_bisect(g, np.ones(64), 0.5, seed=0)
        # optimal bisection of a path cuts exactly one edge
        cut = edge_cut(g, side)
        assert cut <= 2
        w = part_weights(side, nparts=2)
        assert abs(w[0] - w[1]) <= 4

    def test_respects_frac(self):
        g = grid_graph(12, 12)
        side = multilevel_bisect(g, np.ones(144), 0.25, seed=0)
        w0 = (side == 0).sum()
        assert 0.15 * 144 <= w0 <= 0.35 * 144

    def test_invalid_frac(self):
        g = path_graph(8)
        with pytest.raises(PartitionError):
            multilevel_bisect(g, np.ones(8), 1.5)

    def test_vertex_weights(self):
        g = path_graph(32)
        vwgt = np.ones(32)
        vwgt[:8] = 10.0                       # heavy head
        side = multilevel_bisect(g, vwgt, 0.5, seed=0)
        w = part_weights(side, vwgt, nparts=2)
        assert abs(w[0] - w[1]) / w.sum() < 0.2


class TestKWay:
    @pytest.mark.parametrize("k", [2, 3, 5, 8])
    def test_all_parts_nonempty(self, k):
        g = grid_graph(10, 10)
        part = partition_graph(g, k, seed=0)
        assert set(part) == set(range(k))

    @pytest.mark.parametrize("k", [4, 6])
    def test_balance(self, k):
        g = grid_graph(12, 12)
        part = partition_graph(g, k, seed=0)
        assert imbalance(part) < 0.25

    def test_nparts_one(self):
        g = path_graph(10)
        assert np.all(partition_graph(g, 1) == 0)

    def test_errors(self):
        g = path_graph(4)
        with pytest.raises(PartitionError):
            partition_graph(g, 0)
        with pytest.raises(PartitionError):
            partition_graph(g, 10)


class TestRCB:
    def test_deterministic(self, rng):
        pts = rng.random((200, 2))
        p1 = partition_rcb(pts, 8)
        p2 = partition_rcb(pts, 8)
        assert np.array_equal(p1, p2)

    @pytest.mark.parametrize("k", [2, 3, 7, 16])
    def test_balance_exact(self, rng, k):
        pts = rng.random((256, 3))
        part = partition_rcb(pts, k)
        w = part_weights(part, nparts=k)
        assert w.max() - w.min() <= k  # proportional splits

    def test_errors(self, rng):
        with pytest.raises(PartitionError):
            partition_rcb(rng.random((5, 2)), 0)
        with pytest.raises(PartitionError):
            partition_rcb(rng.random((5, 2)), 6)


class TestMeshPartition:
    @pytest.mark.parametrize("method", ["multilevel", "rcb"])
    def test_covers_all_cells(self, method):
        m = unit_square(10)
        part = partition_mesh(m, 6, method=method)
        assert part.shape == (m.num_cells,)
        assert set(part) == set(range(6))

    def test_3d(self):
        m = unit_cube(4)
        part = partition_mesh(m, 4)
        assert imbalance(part) < 0.25

    def test_unknown_method(self):
        with pytest.raises(PartitionError):
            partition_mesh(unit_square(4), 2, method="magic")


class TestMetrics:
    def test_edge_cut_path(self):
        g = path_graph(10)
        part = np.array([0] * 5 + [1] * 5)
        assert edge_cut(g, part) == 1.0

    def test_parts_connected_detects_split(self):
        g = path_graph(10)
        part = np.array([0, 1, 0, 1, 0, 1, 0, 1, 0, 1])
        assert not parts_connected(g, part)
        part2 = np.array([0] * 5 + [1] * 5)
        assert parts_connected(g, part2)

    def test_neighbour_counts_path(self):
        g = path_graph(12)
        part = np.repeat([0, 1, 2], 4)
        counts = neighbour_counts(g, part)
        assert counts.tolist() == [1, 2, 1]

    def test_imbalance_zero_for_equal(self):
        part = np.repeat(np.arange(4), 10)
        assert imbalance(part) == pytest.approx(0.0)


class TestPropertyBased:
    @given(st.integers(min_value=8, max_value=60),
           st.integers(min_value=2, max_value=4),
           st.integers(min_value=0, max_value=5))
    @settings(max_examples=15, deadline=None)
    def test_random_path_partitions_cover(self, n, k, seed):
        g = path_graph(n)
        part = partition_graph(g, k, seed=seed)
        assert part.min() >= 0 and part.max() == k - 1
        w = part_weights(part, nparts=k)
        assert w.min() >= 1
