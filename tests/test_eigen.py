"""Tests for the Lanczos / subspace-iteration eigensolver substrate."""

import numpy as np
import pytest
import scipy.sparse as sp
from scipy.linalg import eigh

from repro.common.errors import EigenError
from repro.eigen import lanczos_generalized, subspace_iteration
from repro.solvers import factorize


def random_pencil(n, rank_b, seed=0):
    """SPD M, PSD B of given rank, with known eigen-decomposition."""
    rng = np.random.default_rng(seed)
    Q = np.linalg.qr(rng.standard_normal((n, n)))[0]
    M = Q @ np.diag(rng.uniform(1, 5, n)) @ Q.T
    db = np.concatenate([rng.uniform(0.5, 4, rank_b), np.zeros(n - rank_b)])
    B = Q @ np.diag(db) @ Q.T
    return sp.csr_matrix(M), sp.csr_matrix(B)


class TestLanczos:
    @pytest.mark.parametrize("nev", [1, 3, 6])
    def test_matches_dense(self, nev):
        n = 80
        M, B = random_pencil(n, n - 10, seed=1)
        Mf = factorize(M, "dense")
        res = lanczos_generalized(lambda x: B @ x, Mf, lambda x: M @ x,
                                  n, nev, seed=0)
        ref = np.sort(eigh(B.toarray(), M.toarray(), eigvals_only=True))[::-1]
        assert np.allclose(res.values, ref[:nev], rtol=1e-9)

    def test_eigenvector_residuals(self):
        n = 60
        M, B = random_pencil(n, 50, seed=2)
        Mf = factorize(M, "dense")
        res = lanczos_generalized(lambda x: B @ x, Mf, lambda x: M @ x,
                                  n, 4, seed=0)
        for k in range(4):
            v = res.vectors[:, k]
            r = B @ v - res.values[k] * (M @ v)
            assert np.linalg.norm(r) < 1e-8 * np.linalg.norm(B @ v)

    def test_m_orthonormal_vectors(self):
        n = 50
        M, B = random_pencil(n, 40, seed=3)
        Mf = factorize(M, "dense")
        res = lanczos_generalized(lambda x: B @ x, Mf, lambda x: M @ x,
                                  n, 5, seed=1)
        G = res.vectors.T @ (M @ res.vectors)
        assert np.allclose(G, np.eye(5), atol=1e-7)

    def test_low_rank_breakdown_handled(self):
        """rank(B) < requested Krylov dimension: must stop gracefully."""
        n = 40
        M, B = random_pencil(n, 5, seed=4)
        Mf = factorize(M, "dense")
        res = lanczos_generalized(lambda x: B @ x, Mf, lambda x: M @ x,
                                  n, 4, seed=0)
        ref = np.sort(eigh(B.toarray(), M.toarray(), eigvals_only=True))[::-1]
        assert np.allclose(res.values, ref[:4], atol=1e-8)

    def test_invalid_nev(self):
        n = 10
        M, B = random_pencil(n, 8)
        Mf = factorize(M, "dense")
        with pytest.raises(EigenError):
            lanczos_generalized(lambda x: B @ x, Mf, lambda x: M @ x, n, 0)
        with pytest.raises(EigenError):
            lanczos_generalized(lambda x: B @ x, Mf, lambda x: M @ x, n, 11)

    def test_deterministic_given_seed(self):
        n = 30
        M, B = random_pencil(n, 25, seed=5)
        Mf = factorize(M, "dense")
        r1 = lanczos_generalized(lambda x: B @ x, Mf, lambda x: M @ x,
                                 n, 3, seed=7)
        r2 = lanczos_generalized(lambda x: B @ x, Mf, lambda x: M @ x,
                                 n, 3, seed=7)
        assert np.array_equal(r1.values, r2.values)


class TestSubspaceIteration:
    def test_matches_dense(self):
        n = 50
        M, B = random_pencil(n, 40, seed=6)
        Mf = factorize(M, "dense")
        res = subspace_iteration(lambda x: B @ x, Mf, lambda x: M @ x,
                                 n, 3, seed=0, tol=1e-10)
        ref = np.sort(eigh(B.toarray(), M.toarray(), eigvals_only=True))[::-1]
        assert np.allclose(res.values[:3], ref[:3], rtol=1e-6)

    def test_agrees_with_lanczos(self):
        n = 40
        M, B = random_pencil(n, 30, seed=8)
        Mf = factorize(M, "dense")
        r1 = lanczos_generalized(lambda x: B @ x, Mf, lambda x: M @ x,
                                 n, 3, seed=0)
        r2 = subspace_iteration(lambda x: B @ x, Mf, lambda x: M @ x,
                                n, 3, seed=0, tol=1e-10)
        assert np.allclose(r1.values, r2.values[:3], rtol=1e-6)

    def test_invalid_nev(self):
        n = 10
        M, B = random_pencil(n, 5)
        Mf = factorize(M, "dense")
        with pytest.raises(EigenError):
            subspace_iteration(lambda x: B @ x, Mf, lambda x: M @ x, n, 0)
