"""Additional property-based coverage: I/O roundtrips, election, norms."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import elect_masters_nonuniform, elect_masters_uniform, split_ranges
from repro.fem import FunctionSpace, l2_norm
from repro.mesh import rectangle
from repro.mesh.gmsh import read_gmsh, write_gmsh
from repro.mesh.io import load_mesh, save_mesh


class TestIORoundtrips:
    @given(nx=st.integers(1, 6), ny=st.integers(1, 6),
           sx=st.floats(0.5, 3.0), sy=st.floats(0.5, 3.0))
    @settings(max_examples=10, deadline=None)
    def test_native_roundtrip_random_rectangles(self, nx, ny, sx, sy,
                                                tmp_path_factory):
        m = rectangle(nx, ny, x1=sx, y1=sy)
        p = tmp_path_factory.mktemp("io") / "m.txt"
        save_mesh(m, p)
        m2 = load_mesh(p)
        assert np.allclose(m.vertices, m2.vertices)
        assert np.array_equal(m.cells, m2.cells)

    @given(nx=st.integers(1, 5), ny=st.integers(1, 5),
           seed=st.integers(0, 50))
    @settings(max_examples=10, deadline=None)
    def test_gmsh_roundtrip_random(self, nx, ny, seed, tmp_path_factory):
        m = rectangle(nx, ny)
        rng = np.random.default_rng(seed)
        tags = rng.integers(0, 5, m.num_cells)
        p = tmp_path_factory.mktemp("gmsh") / "m.msh"
        write_gmsh(m, p, physical_tags=tags)
        m2, tags2 = read_gmsh(p)
        assert m2.total_volume() == pytest.approx(m.total_volume())
        assert np.array_equal(tags2, tags)


class TestElectionProperties:
    @given(N=st.integers(2, 512), P=st.integers(1, 32))
    @settings(max_examples=40, deadline=None)
    def test_elections_are_valid(self, N, P):
        P = min(P, N)
        for elect in (elect_masters_uniform, elect_masters_nonuniform):
            masters = elect(N, P)
            assert masters.shape == (P,)
            assert masters[0] == 0
            assert np.all(np.diff(masters) >= 1)     # strictly increasing
            assert masters[-1] < N
            ranges = split_ranges(masters, N)
            assert np.array_equal(np.concatenate(ranges), np.arange(N))

    @given(N=st.integers(8, 1024))
    @settings(max_examples=20, deadline=None)
    def test_nonuniform_groups_grow(self, N):
        """Upper-triangle rows shrink with the row index, so later
        masters must own MORE ranks to balance value counts: group sizes
        grow towards the end (up to integer rounding)."""
        P = max(2, N // 16)
        masters = elect_masters_nonuniform(N, P)
        sizes = np.diff(np.concatenate([masters, [N]]))
        assert sizes[-1] + 1 >= sizes[0]


class TestNormProperties:
    @given(a=st.floats(-5, 5), b=st.floats(-5, 5))
    @settings(max_examples=10, deadline=None)
    def test_l2_norm_homogeneity(self, a, b):
        V = FunctionSpace(rectangle(3, 3), 2)
        u = V.interpolate(lambda x: x[:, 0] + 0.3)
        assert l2_norm(V, a * u) == pytest.approx(abs(a) * l2_norm(V, u),
                                                  abs=1e-12)

    @given(seed=st.integers(0, 30))
    @settings(max_examples=10, deadline=None)
    def test_l2_triangle_inequality(self, seed):
        V = FunctionSpace(rectangle(3, 3), 1)
        rng = np.random.default_rng(seed)
        u = rng.standard_normal(V.num_dofs)
        v = rng.standard_normal(V.num_dofs)
        assert l2_norm(V, u + v) <= l2_norm(V, u) + l2_norm(V, v) + 1e-12
