"""Tests for the coarse operator: E = ZᵀAZ, sparsity, election, correction."""

import numpy as np
import pytest

from repro.common.errors import DecompositionError
from repro.core import (
    CoarseOperator,
    DeflationSpace,
    assemble_coarse_matrix,
    coarse_blocks,
    compute_deflation,
    elect_masters_nonuniform,
    elect_masters_uniform,
    split_ranges,
)


@pytest.fixture(scope="module")
def space(diffusion_decomposition):
    dec = diffusion_decomposition
    Ws = [compute_deflation(s, nev=4, seed=s.index).W
          for s in dec.subdomains]
    return DeflationSpace(dec, Ws)


class TestCoarseAssembly:
    def test_e_equals_ztaz(self, space):
        dec = space.dec
        A = dec.problem.matrix()
        Z = space.explicit_z()
        E_ref = (Z.T @ A @ Z).toarray()
        E = assemble_coarse_matrix(space).toarray()
        assert np.abs(E - E_ref).max() <= 1e-12 * np.abs(E_ref).max()

    def test_e_symmetric(self, space):
        E = assemble_coarse_matrix(space).toarray()
        assert np.allclose(E, E.T, atol=1e-12 * abs(E).max())

    def test_block_transpose_symmetry(self, space):
        blocks = coarse_blocks(space)
        for (i, j), blk in blocks.items():
            if i < j:
                assert np.allclose(blk, blocks[(j, i)].T,
                                   atol=1e-10 * max(abs(blk).max(), 1e-30))

    def test_sparsity_matches_connectivity(self, space):
        """Block (i, j) exists iff j ∈ Ō_i (fig. 4)."""
        blocks = coarse_blocks(space)
        dec = space.dec
        for s in dec.subdomains:
            expected = set(s.neighbors) | {s.index}
            got = {j for (i, j) in blocks if i == s.index}
            assert got == expected

    def test_e_spd(self, space):
        E = assemble_coarse_matrix(space).toarray()
        w = np.linalg.eigvalsh(E)
        assert w.min() > 0


class TestMasterElection:
    def test_uniform(self):
        assert elect_masters_uniform(16, 4).tolist() == [0, 4, 8, 12]

    def test_nonuniform_matches_paper_figure5(self):
        """N = 16, P = 4 → masters at ranks 0, 2, 5, 8 (fig. 5 right)."""
        assert elect_masters_nonuniform(16, 4).tolist() == [0, 2, 5, 8]

    def test_nonuniform_balances_upper_triangle(self):
        """Each master's quadrilateral of upper-triangle entries should
        hold roughly the same count."""
        N, P = 64, 4
        masters = elect_masters_nonuniform(N, P)
        bounds = np.concatenate([masters, [N]])
        counts = []
        for p in range(P):
            lo, hi = bounds[p], bounds[p + 1]
            # rows lo..hi of the upper triangle of an N x N matrix
            counts.append(sum(N - r for r in range(lo, hi)))
        counts = np.array(counts, dtype=float)
        assert counts.max() / counts.min() < 1.7

    def test_uniform_is_worse_balanced_for_triangle(self):
        N, P = 64, 4
        for elect, expect_ratio in ((elect_masters_uniform, 2.0),):
            masters = elect(N, P)
            bounds = np.concatenate([masters, [N]])
            counts = [sum(N - r for r in range(bounds[p], bounds[p + 1]))
                      for p in range(P)]
            assert max(counts) / min(counts) > expect_ratio

    def test_split_ranges_cover(self):
        masters = elect_masters_nonuniform(16, 4)
        ranges = split_ranges(masters, 16)
        allr = np.concatenate(ranges)
        assert np.array_equal(allr, np.arange(16))
        for p, r in enumerate(ranges):
            assert r[0] == masters[p]

    def test_invalid_p(self):
        with pytest.raises(DecompositionError):
            elect_masters_uniform(4, 5)
        with pytest.raises(DecompositionError):
            elect_masters_nonuniform(4, 0)

    @pytest.mark.parametrize("elect",
                             [elect_masters_uniform,
                              elect_masters_nonuniform])
    def test_single_master(self, elect):
        """P = 1: rank 0 masters everything."""
        masters = elect(16, 1)
        assert masters.tolist() == [0]
        ranges = split_ranges(masters, 16)
        assert len(ranges) == 1
        assert np.array_equal(ranges[0], np.arange(16))

    @pytest.mark.parametrize("elect",
                             [elect_masters_uniform,
                              elect_masters_nonuniform])
    @pytest.mark.parametrize("N", [1, 2, 3, 5, 8])
    def test_every_rank_a_master(self, elect, N):
        """P = N: every rank masters exactly itself."""
        masters = elect(N, N)
        assert masters.tolist() == list(range(N))
        ranges = split_ranges(masters, N)
        assert all(len(r) == 1 for r in ranges)

    @pytest.mark.parametrize("N,P", [(2, 2), (3, 2), (3, 3), (4, 3),
                                     (5, 4), (5, 5), (6, 5), (7, 6)])
    def test_tiny_n_rounding_guard(self, N, P):
        """Tiny N/P combinations exercise the degenerate-rounding guard:
        masters must stay strictly increasing and inside [0, N)."""
        masters = elect_masters_nonuniform(N, P)
        assert masters.shape == (P,)
        assert masters[0] == 0
        assert np.all(np.diff(masters) >= 1)
        assert masters[-1] < N
        ranges = split_ranges(masters, N)
        assert np.array_equal(np.concatenate(ranges), np.arange(N))
        assert all(len(r) >= 1 for r in ranges)

    @pytest.mark.parametrize("elect",
                             [elect_masters_uniform,
                              elect_masters_nonuniform])
    @pytest.mark.parametrize("N,P", [(4, 5), (1, 2), (16, 17), (8, 100)])
    def test_more_masters_than_ranks_raises(self, elect, N, P):
        """P > N is a configuration error, not a silent clamp."""
        with pytest.raises(DecompositionError):
            elect(N, P)

    @pytest.mark.parametrize("elect",
                             [elect_masters_uniform,
                              elect_masters_nonuniform])
    @pytest.mark.parametrize("N,P", [(10, 3), (17, 4), (100, 7),
                                     (33, 8), (1000, 13)])
    def test_indivisible_n_partitions_cleanly(self, elect, N, P):
        """N not divisible by P: masters strictly increasing, first at
        rank 0, and the split ranges tile [0, N) without gaps."""
        masters = elect(N, P)
        assert masters.shape == (P,)
        assert masters[0] == 0
        assert np.all(np.diff(masters) >= 1)
        assert masters[-1] < N
        ranges = split_ranges(masters, N)
        assert np.array_equal(np.concatenate(ranges), np.arange(N))
        sizes = [len(r) for r in ranges]
        assert min(sizes) >= 1 and sum(sizes) == N


class TestCoarseOperator:
    def test_correction_matches_explicit(self, space, rng):
        op = CoarseOperator(space)
        Z = space.explicit_z()
        E = op.E.toarray()
        u = rng.standard_normal(space.dec.problem.num_free)
        ref = Z @ np.linalg.solve(E, Z.T @ u)
        assert np.allclose(op.correction(u), ref, atol=1e-8 * abs(ref).max())

    def test_solve_counter(self, space, rng):
        op = CoarseOperator(space)
        u = rng.standard_normal(space.dec.problem.num_free)
        op.correction(u)
        op.correction(u)
        assert op.solves == 2

    def test_nnz_factor_positive(self, space):
        assert CoarseOperator(space).nnz_factor() > 0

    def test_dim(self, space):
        assert CoarseOperator(space).dim == space.m

    def test_cached_az_columns_are_t_blocks(self, space):
        """Block column i of the cached A·Z is T_i = A_i W_i scattered to
        subdomain i's rows."""
        op = CoarseOperator(space)
        AZ = op.AZ.toarray()
        off = space.offsets
        for i, s in enumerate(space.dec.subdomains):
            cols = AZ[:, off[i]:off[i + 1]]
            assert np.array_equal(cols[s.dofs], op.T[i])
            mask = np.ones(cols.shape[0], dtype=bool)
            mask[s.dofs] = False
            assert not cols[mask].any()


class TestPseudoInverseFallback:
    @pytest.fixture(scope="class")
    def deficient_space(self, diffusion_decomposition):
        """Deflation space with one duplicated vector → singular E."""
        dec = diffusion_decomposition
        Ws = [compute_deflation(s, nev=4, seed=s.index).W
              for s in dec.subdomains]
        W0 = Ws[0].copy()
        W0[:, -1] = W0[:, 0]          # exact linear dependence
        return DeflationSpace(dec, [W0] + Ws[1:])

    def test_rank_deficiency_detected(self, deficient_space):
        op = CoarseOperator(deficient_space)
        assert op.rank_deficient
        assert op.factorization.rank == deficient_space.m - 1

    def test_correction_matches_pinv(self, deficient_space, rng):
        """The fallback correction is Z E⁺ Zᵀ u (truncated eigensolve),
        which the theory needs only on range(Zᵀ·)."""
        op = CoarseOperator(deficient_space)
        Z = deficient_space.explicit_z().toarray()
        E = op.E.toarray()
        u = rng.standard_normal(deficient_space.dec.problem.num_free)
        ref = Z @ (np.linalg.pinv(E, rcond=1e-10) @ (Z.T @ u))
        got = op.correction(u)
        assert np.linalg.norm(got - ref) \
            <= 1e-8 * max(np.linalg.norm(ref), 1e-300)

    def test_solve_is_finite_and_consistent(self, deficient_space, rng):
        op = CoarseOperator(deficient_space)
        w = deficient_space.zt_dot(
            rng.standard_normal(deficient_space.dec.problem.num_free))
        y = op.solve(w)
        assert np.all(np.isfinite(y))
        # E y reproduces the range-component of w
        resid = op.E @ y - w
        assert np.linalg.norm(resid) <= 1e-8 * np.linalg.norm(w)
