"""Tests for the GenEO eigenproblem and deflation-space construction."""

import numpy as np
import pytest

from repro.common.errors import EigenError
from repro.core import (
    DeflationSpace,
    compute_deflation,
    geneo_pencil,
    nicolaides_deflation,
)
from repro.dd import Decomposition, Problem
from repro.fem import channels_and_inclusions, layered_elasticity
from repro.fem.forms import DiffusionForm, ElasticityForm
from repro.mesh import rectangle, unit_square
from repro.partition import partition_mesh


@pytest.fixture(scope="module")
def floating_elasticity():
    """An elasticity decomposition where interior subdomains float."""
    mesh = rectangle(20, 4, x1=5.0)
    lam, mu = layered_elasticity(mesh)
    prob = Problem(mesh, ElasticityForm(degree=1, lam=lam, mu=mu),
                   dirichlet=lambda x: x[:, 0] < 1e-9)
    part = (np.minimum((mesh.cell_centroids()[:, 0]), 4.999)).astype(int)
    return Decomposition(prob, part, delta=1)


class TestPencil:
    def test_b_symmetric_psd(self, diffusion_decomposition):
        for s in diffusion_decomposition.subdomains[:3]:
            A, B = geneo_pencil(s)
            Bd = B.toarray()
            assert np.allclose(Bd, Bd.T, atol=1e-10 * max(abs(Bd).max(), 1))
            w = np.linalg.eigvalsh(Bd)
            assert w.min() > -1e-8 * max(abs(w).max(), 1)

    def test_b_supported_on_overlap(self, diffusion_decomposition):
        s = diffusion_decomposition.subdomains[0]
        _, B = geneo_pencil(s)
        interior = ~s.overlap_mask
        assert abs(B[interior][:, interior]).max() == 0


class TestComputeDeflation:
    def test_rigid_body_modes_detected(self, floating_elasticity):
        """A floating 2D elastic subdomain has a 3-dimensional kernel:
        GenEO must return (near-)zero eigenvalues for exactly 3 modes."""
        interior = floating_elasticity.subdomains[2]
        res = compute_deflation(interior, nev=6)
        lam = res.eigenvalues
        scale = max(abs(lam).max(), 1.0)
        assert (np.abs(lam) < 1e-6 * scale).sum() == 3

    def test_clamped_subdomain_no_kernel(self, floating_elasticity):
        """The subdomain touching the Dirichlet boundary is not floating."""
        res = compute_deflation(floating_elasticity.subdomains[0], nev=6)
        assert np.abs(res.eigenvalues[0]) > 1e-10

    def test_w_is_d_scaled(self, diffusion_decomposition):
        s = diffusion_decomposition.subdomains[0]
        res = compute_deflation(s, nev=3)
        # columns of W vanish where the partition of unity does
        zero_rows = s.d == 0
        if zero_rows.any():
            assert np.abs(res.W[zero_rows]).max() < 1e-14

    def test_nev_respected(self, diffusion_decomposition):
        s = diffusion_decomposition.subdomains[1]
        for nev in (1, 4, 7):
            assert compute_deflation(s, nev=nev).nu == nev

    def test_threshold_selection(self, diffusion_decomposition):
        s = diffusion_decomposition.subdomains[0]
        full = compute_deflation(s, nev=8)
        cut = full.eigenvalues[3] if full.nu > 3 else None
        if cut is not None and np.isfinite(cut):
            res = compute_deflation(s, nev=8, tau=cut * 0.999)
            assert res.nu <= 3 or np.all(res.eigenvalues < cut)

    def test_scipy_cross_check(self, diffusion_decomposition):
        s = diffusion_decomposition.subdomains[2]
        r1 = compute_deflation(s, nev=4, method="lanczos")
        r2 = compute_deflation(s, nev=4, method="scipy")
        assert np.allclose(r1.eigenvalues, r2.eigenvalues, rtol=1e-5)

    def test_eigenvalues_sorted(self, diffusion_decomposition):
        res = compute_deflation(diffusion_decomposition.subdomains[0], nev=6)
        assert np.all(np.diff(res.eigenvalues) >= -1e-12)

    def test_invalid_nev(self, diffusion_decomposition):
        with pytest.raises(EigenError):
            compute_deflation(diffusion_decomposition.subdomains[0], nev=0)

    def test_unknown_method(self, diffusion_decomposition):
        with pytest.raises(EigenError):
            compute_deflation(diffusion_decomposition.subdomains[0],
                              nev=2, method="arpack")


class TestNicolaides:
    def test_scalar_constant(self, diffusion_decomposition):
        s = diffusion_decomposition.subdomains[0]
        res = nicolaides_deflation(s, ncomp=1)
        assert res.nu == 1
        assert np.allclose(res.W[:, 0], s.d)

    def test_vector_per_component(self, elasticity_decomposition):
        s = elasticity_decomposition.subdomains[0]
        res = nicolaides_deflation(s, ncomp=2)
        assert res.nu == 2
        assert np.allclose(res.W[0::2, 0], s.d[0::2])
        assert np.abs(res.W[1::2, 0]).max() == 0


class TestDeflationSpace:
    def test_explicit_z_matches_products(self, diffusion_decomposition, rng):
        dec = diffusion_decomposition
        Ws = [compute_deflation(s, nev=3).W for s in dec.subdomains]
        space = DeflationSpace(dec, Ws)
        Z = space.explicit_z()
        u = rng.standard_normal(dec.problem.num_free)
        assert np.allclose(space.zt_dot(u), Z.T @ u)
        y = rng.standard_normal(space.m)
        assert np.allclose(space.z_dot(y), Z @ y)

    def test_offsets(self, diffusion_decomposition):
        dec = diffusion_decomposition
        Ws = [np.ones((s.size, 2)) for s in dec.subdomains]
        space = DeflationSpace(dec, Ws)
        assert space.m == 2 * dec.num_subdomains
        assert np.array_equal(np.diff(space.offsets), space.nu)

    def test_wrong_block_count(self, diffusion_decomposition):
        from repro.common.errors import DecompositionError
        with pytest.raises(DecompositionError):
            DeflationSpace(diffusion_decomposition, [np.ones((3, 1))])
