"""Batched multi-RHS solving, subspace recycling, Krylov registry,
warm starts and the shared zero-RHS semantics."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse.linalg as spla

from repro import SchwarzSolver, SolveSession
from repro.common.errors import ReproError
from repro.fem import channels_and_inclusions
from repro.fem.forms import DiffusionForm
from repro.mesh import unit_square
from repro.obs import Recorder, column_iterations
from repro.resilience import FaultPlan, FaultSpec

DRIVERS = ["gmres", "p1-gmres", "cg", "fgmres", "sstep", "deflated-cg"]


def _pre(krylov: str) -> str:
    return "bnn" if krylov in ("cg", "deflated-cg") else "adef1"


def _make_solver(krylov="gmres", recorder=None, faults=None,
                 recovery=None, **kw):
    mesh = unit_square(12)
    form = DiffusionForm(degree=1,
                         kappa=channels_and_inclusions(mesh, seed=3))
    kw.setdefault("num_subdomains", 4)
    kw.setdefault("nev", 4)
    kw.setdefault("preconditioner", _pre(krylov))
    return SchwarzSolver(mesh, form, krylov=krylov, recorder=recorder,
                         faults=faults, recovery=recovery, **kw)


@pytest.fixture(scope="module")
def solver():
    return _make_solver()


@pytest.fixture(scope="module")
def exact(solver):
    A = solver.problem.matrix().tocsc()
    b = solver.problem.rhs()
    return b, spla.spsolve(A, b)


# ----------------------------------------------------------------------
# Krylov registry (satellite 1)
# ----------------------------------------------------------------------

class TestRegistry:
    @pytest.mark.parametrize("krylov", DRIVERS)
    def test_all_six_selectable(self, krylov):
        s = _make_solver(krylov)
        report = s.solve(tol=1e-8)
        assert report.converged
        assert report.krylov.final_residual <= 1e-8

    def test_deflated_cg_needs_two_level(self):
        with pytest.raises(ReproError, match="deflation basis"):
            _make_solver("deflated-cg", levels=1, preconditioner="ras")

    def test_restart_reaches_fgmres(self):
        # a tiny restart forces extra cycles — the kwarg must be plumbed
        s_small = _make_solver("fgmres")
        few = s_small.solve(tol=1e-10, restart=3)
        many = _make_solver("fgmres").solve(tol=1e-10, restart=40)
        assert few.converged
        assert few.krylov.global_syncs != many.krylov.global_syncs

    def test_sstep_gets_block_size(self):
        report = _make_solver("sstep").solve(tol=1e-8, restart=4)
        assert report.converged


# ----------------------------------------------------------------------
# Warm starts (satellite 4)
# ----------------------------------------------------------------------

class TestWarmStart:
    @pytest.mark.parametrize("krylov", DRIVERS)
    def test_nonzero_x0_converges(self, krylov):
        s = _make_solver(krylov)
        b = s.problem.rhs()
        rng = np.random.default_rng(5)
        x0 = rng.standard_normal(b.shape[0])
        report = s.solve(b, tol=1e-8, x0=x0)
        assert report.converged
        A = s.problem.matrix()
        res = np.linalg.norm(b - A @ report.krylov.x)
        assert res <= 1e-7 * np.linalg.norm(b)

    @pytest.mark.parametrize("krylov", DRIVERS)
    def test_exact_x0_zero_iterations(self, krylov):
        s = _make_solver(krylov)
        A = s.problem.matrix().tocsc()
        b = s.problem.rhs()
        xstar = spla.spsolve(A, b)
        report = s.solve(b, tol=1e-6, x0=xstar)
        assert report.converged
        assert report.iterations == 0


# ----------------------------------------------------------------------
# Shared zero-RHS early return (satellite 3)
# ----------------------------------------------------------------------

class TestZeroRhs:
    @pytest.mark.parametrize("krylov", DRIVERS)
    def test_zero_rhs_semantics(self, krylov):
        s = _make_solver(krylov)
        n = s.problem.num_free
        calls = []
        report = s.solve(np.zeros(n), tol=1e-8,
                         x0=np.ones(n),    # discarded: exact answer known
                         callback=lambda k, r: calls.append((k, r)))
        assert report.iterations == 0
        assert report.converged
        assert np.all(report.krylov.x == 0.0)
        assert report.residuals == [0.0]
        # the callback fires exactly once (it used to be skipped)
        assert calls == [(0, 0.0)]


# ----------------------------------------------------------------------
# Block drivers (tentpole)
# ----------------------------------------------------------------------

class TestSolveMany:
    @pytest.mark.parametrize("krylov", ["gmres", "cg"])
    def test_matches_single_solves(self, krylov):
        s = _make_solver(krylov)
        n = s.problem.num_free
        rng = np.random.default_rng(2)
        B = rng.standard_normal((n, 5))
        rep = s.session().solve_many(B, tol=1e-9)
        assert rep.converged
        assert rep.driver == ("block-cg" if krylov == "cg"
                              else "block-gmres")
        for j in range(5):
            single = s.solve(B[:, j], tol=1e-11)
            err = (np.linalg.norm(rep.X[:, j] - single.x)
                   / np.linalg.norm(single.x))
            assert err < 1e-6

    def test_column_deflation_with_exact_column(self, solver, exact):
        b, xstar = exact
        n = solver.problem.num_free
        rng = np.random.default_rng(3)
        B = np.column_stack([b, rng.standard_normal(n)])
        X0 = np.zeros((n, 2))
        X0[:, 0] = xstar          # column 0 starts at its solution
        rec = Recorder()
        s = _make_solver(recorder=rec)
        rep = s.session().solve_many(B, tol=1e-6, X0=X0)
        assert rep.converged
        assert rep.column_iterations[0] == 0      # deflated immediately
        assert rep.column_iterations[1] > 0
        # the trace carries the same per-column map
        assert column_iterations(rec) == {
            0: 0, 1: int(rep.column_iterations[1])}

    def test_zero_column_in_block(self, solver):
        n = solver.problem.num_free
        rng = np.random.default_rng(4)
        B = np.column_stack([np.zeros(n), rng.standard_normal(n)])
        rep = solver.session().solve_many(B, tol=1e-8)
        assert rep.converged
        assert np.all(rep.X[:, 0] == 0.0)
        assert rep.column_iterations[0] == 0

    def test_fewer_block_iterations_than_singles(self, solver):
        n = solver.problem.num_free
        rng = np.random.default_rng(6)
        B = rng.standard_normal((n, 8))
        rep = solver.session().solve_many(B, tol=1e-8)
        single_iters = max(solver.solve(B[:, j], tol=1e-8).iterations
                           for j in range(8))
        assert rep.iterations <= single_iters


# ----------------------------------------------------------------------
# Subspace recycling (tentpole)
# ----------------------------------------------------------------------

class TestRecycling:
    def test_recycling_reduces_iterations(self):
        s = _make_solver()
        session = s.session(recycle_dim=8)
        b = s.problem.rhs()
        first = session.solve(b, tol=1e-8)
        second = session.solve(1.01 * b, tol=1e-8)
        assert first.converged and second.converged
        assert second.iterations < first.iterations
        assert session.recycle_active
        assert session.coarse_dim > s.coarse_dim

    def test_recycling_one_level(self):
        # a one-level solver gains an a-posteriori coarse level made of
        # harvested Ritz vectors — the dramatic case
        s = _make_solver(levels=1, preconditioner="ras")
        session = s.session(recycle_dim=10)
        b = s.problem.rhs()
        first = session.solve(b, tol=1e-6, maxiter=400)
        second = session.solve(1.01 * b, tol=1e-6, maxiter=400)
        assert second.iterations < first.iterations

    def test_reset_recycling(self, solver):
        session = solver.session(recycle_dim=4)
        b = solver.problem.rhs()
        session.solve(b, tol=1e-8)
        assert session.recycle_active
        session.reset_recycling()
        assert not session.recycle_active
        assert session.coarse_dim == solver.coarse_dim

    def test_recycle_false_keeps_base(self, solver):
        session = solver.session()
        b = solver.problem.rhs()
        rep = session.solve(b, tol=1e-8, recycle=False)
        assert rep.converged
        assert not session.recycle_active


# ----------------------------------------------------------------------
# Health monitoring across every registered driver
# ----------------------------------------------------------------------

class TestHealthAllDrivers:
    @pytest.mark.parametrize("krylov", DRIVERS)
    def test_nan_fault_surfaces_typed(self, krylov):
        plan = FaultPlan([FaultSpec("nan", "local_solve", rank=1, nth=2)])
        s = _make_solver(krylov, faults=plan)
        with pytest.raises(ReproError):
            s.solve(tol=1e-10)


# ----------------------------------------------------------------------
# Session plumbing
# ----------------------------------------------------------------------

class TestSessionApi:
    def test_factory_and_export(self, solver):
        session = solver.session()
        assert isinstance(session, SolveSession)
        assert session.solver is solver

    def test_counters(self):
        rec = Recorder()
        s = _make_solver(recorder=rec)
        n = s.problem.num_free
        B = np.random.default_rng(0).standard_normal((n, 3))
        s.session().solve_many(B, tol=1e-8)
        assert rec.counters["batch.batches"] == 1
        assert rec.counters["batch.columns"] == 3
        assert rec.counters["batch.block_iterations"] >= 1

    def test_invalid_inputs(self, solver):
        session = solver.session()
        with pytest.raises(ReproError):
            session.solve_many(np.zeros(5))          # 1-D
        with pytest.raises(ReproError):
            session.solve_many(np.zeros((5, 2)), driver="bogus")
        with pytest.raises(ReproError):
            solver.session(recycle_dim=-1)
