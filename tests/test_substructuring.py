"""Tests for the non-overlapping (Schur complement) solver."""

import numpy as np
import pytest
import scipy.sparse.linalg as spla

from repro.common.errors import DecompositionError
from repro.dd import Problem
from repro.fem import channels_and_inclusions, lame_parameters
from repro.fem.forms import DiffusionForm, ElasticityForm
from repro.mesh import rectangle, unit_square
from repro.partition import partition_mesh
from repro.substructuring import SchurComplementSolver


@pytest.fixture(scope="module")
def hetero_problem():
    mesh = unit_square(16)
    kappa = channels_and_inclusions(mesh, seed=2)
    prob = Problem(mesh, DiffusionForm(degree=2, kappa=kappa))
    part = partition_mesh(mesh, 6, seed=1)
    xref = prob.extend(spla.spsolve(prob.matrix().tocsc(), prob.rhs()))
    return prob, part, xref


class TestSchurSolver:
    @pytest.mark.parametrize("coarse", ["none", "constants", "geneo"])
    def test_solution_matches_direct(self, hetero_problem, coarse):
        prob, part, xref = hetero_problem
        s = SchurComplementSolver(prob, part, coarse=coarse, nev=8)
        x, its = s.solve(tol=1e-9, maxiter=400)
        assert np.linalg.norm(x - xref) <= 1e-6 * np.linalg.norm(xref)

    def test_schur_matvec_matches_dense(self, hetero_problem, rng):
        prob, part, _ = hetero_problem
        s = SchurComplementSolver(prob, part, coarse="none")
        A = prob.matrix().toarray()
        gd = s.gamma_dofs
        idx = np.setdiff1d(np.arange(prob.num_free), gd)
        S_ref = A[np.ix_(gd, gd)] - A[np.ix_(gd, idx)] @ np.linalg.solve(
            A[np.ix_(idx, idx)], A[np.ix_(idx, gd)])
        u = rng.standard_normal(len(gd))
        out = s.schur_matvec(u)
        assert np.linalg.norm(out - S_ref @ u) <= \
            1e-10 * np.linalg.norm(S_ref @ u)

    def test_balancing_coarse_helps(self, hetero_problem):
        """Classical BDD: the balanced constants coarse space helps on
        high contrast (with stiffness-scaled counting functions)."""
        prob, part, _ = hetero_problem
        s0 = SchurComplementSolver(prob, part, coarse="none")
        _, its0 = s0.solve(tol=1e-8)
        sc = SchurComplementSolver(prob, part, coarse="constants")
        _, itsc = sc.solve(tol=1e-8)
        assert itsc <= its0

    def test_neumann_neumann_weights_partition(self, hetero_problem):
        """Interface weights sum to one across owning subdomains."""
        prob, part, _ = hetero_problem
        s = SchurComplementSolver(prob, part, coarse="none")
        acc = np.zeros(s.n_gamma)
        for sub in s.subdomains:
            np.add.at(acc, sub.gamma_global, sub.d)
        assert np.allclose(acc, 1.0)

    def test_coarse_pattern_denser_than_overlapping(self, hetero_problem):
        """§3.1: block (i,j) of E is nonzero beyond direct neighbours."""
        prob, part, _ = hetero_problem
        s = SchurComplementSolver(prob, part, coarse="constants")
        density = s.coarse_pattern_density()
        from repro.dd import Decomposition
        dec = Decomposition(prob, part, delta=1)
        overl_blocks = sum(len(sub.neighbors) + 1
                           for sub in dec.subdomains)
        overl_density = overl_blocks / dec.num_subdomains ** 2
        assert density >= overl_density

    def test_elasticity_with_floating_subdomains(self):
        """Floating subdomains have singular S_i (rigid modes) — the
        pseudo-inverse Neumann-Neumann must still solve correctly."""
        mesh = rectangle(12, 3, x1=4.0)
        lam, mu = lame_parameters(1.0, 0.3)
        prob = Problem(mesh, ElasticityForm(degree=1, lam=lam, mu=mu),
                       dirichlet=lambda x: x[:, 0] < 1e-9)
        part = np.minimum((mesh.cell_centroids()[:, 0]).astype(int), 3)
        s = SchurComplementSolver(prob, part, coarse="geneo", nev=4)
        x, its = s.solve(tol=1e-9, maxiter=400)
        xref = prob.extend(spla.spsolve(prob.matrix().tocsc(),
                                        prob.rhs()))
        assert np.linalg.norm(x - xref) <= 1e-6 * np.linalg.norm(xref)

    def test_errors(self, hetero_problem):
        prob, part, _ = hetero_problem
        with pytest.raises(DecompositionError):
            SchurComplementSolver(prob, part, coarse="bdd2")
        scaled = Problem(prob.mesh, prob.form, scaling="jacobi")
        with pytest.raises(DecompositionError):
            SchurComplementSolver(scaled, part)
        single = np.zeros(prob.mesh.num_cells, dtype=int)
        with pytest.raises(DecompositionError):
            SchurComplementSolver(prob, single, coarse="none")
