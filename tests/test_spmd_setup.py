"""The fully-distributed setup must reproduce the sequential
decomposition exactly — the paper's 'no global ordering needed' claim."""

import numpy as np
import pytest

from repro.core.spmd_setup import spmd_build_decomposition
from repro.dd import Decomposition, Problem
from repro.fem import channels_and_inclusions, layered_elasticity
from repro.fem.forms import DiffusionForm, ElasticityForm
from repro.mesh import rectangle, unit_square
from repro.mpi import Meter, run_spmd
from repro.partition import partition_mesh


def build_both(problem, part, delta, meter=None):
    dec = Decomposition(problem, part, delta=delta)
    N = dec.num_subdomains
    locals_ = run_spmd(
        N, spmd_build_decomposition, problem, part, delta, meter=meter)
    return dec, locals_


@pytest.mark.parametrize("delta", [1, 2])
def test_matches_sequential_diffusion(delta):
    mesh = unit_square(14)
    kappa = channels_and_inclusions(mesh, seed=4)
    prob = Problem(mesh, DiffusionForm(degree=2, kappa=kappa))
    part = partition_mesh(mesh, 5, seed=2)
    dec, locals_ = build_both(prob, part, delta)
    for seq, loc in zip(dec.subdomains, locals_):
        assert np.array_equal(seq.dofs, loc.dofs)
        assert abs(seq.A_dir - loc.A_dir).max() <= \
            1e-12 * abs(seq.A_dir).max()
        assert abs(seq.A_neu - loc.A_neu).max() <= \
            1e-12 * abs(seq.A_neu).max()
        assert np.allclose(seq.d, loc.d, atol=1e-13)
        assert seq.neighbors == loc.neighbors
        for j in seq.neighbors:
            assert np.array_equal(seq.shared[j], loc.shared[j])


def test_matches_sequential_elasticity_scaled():
    mesh = rectangle(12, 4, x1=3.0)
    lam, mu = layered_elasticity(mesh)
    prob = Problem(mesh, ElasticityForm(degree=2, lam=lam, mu=mu),
                   dirichlet=lambda x: x[:, 0] < 1e-9, scaling="jacobi")
    part = partition_mesh(mesh, 4, seed=0)
    # the sequential path installs the scale on the problem; build it
    # first so both operate on the same scaled system
    dec = Decomposition(prob, part, delta=1)
    locals_ = run_spmd(4, spmd_build_decomposition, prob, part, 1)
    for seq, loc in zip(dec.subdomains, locals_):
        assert np.array_equal(seq.dofs, loc.dofs)
        assert abs(seq.A_dir - loc.A_dir).max() <= \
            1e-10 * abs(seq.A_dir).max()
        assert np.allclose(seq.d, loc.d, atol=1e-12)


def test_partition_of_unity_from_messages():
    """The χ̃-exchange normalisation alone gives Σ RᵀDR = I."""
    mesh = unit_square(12)
    prob = Problem(mesh, DiffusionForm(degree=3))
    part = partition_mesh(mesh, 6, seed=1)
    locals_ = run_spmd(6, spmd_build_decomposition, prob, part, 2)
    acc = np.zeros(prob.num_free)
    for loc in locals_:
        np.add.at(acc, loc.dofs, loc.d)
    assert np.abs(acc - 1).max() < 1e-12


def test_setup_traffic_is_neighbour_local():
    """Setup communication = dof keys + χ̃ values with neighbours only;
    no collectives over the world communicator at all."""
    mesh = unit_square(12)
    prob = Problem(mesh, DiffusionForm(degree=2))
    part = partition_mesh(mesh, 6, seed=1)
    meter = Meter(6)
    run_spmd(6, spmd_build_decomposition, prob, part, 1, meter=meter)
    assert meter.total_collectives() == 0          # pure point-to-point
    assert meter.max_global_syncs() == 0
    # bounded by candidates (keys) + neighbours (chi): O(|O_i|) messages
    for r in range(6):
        assert 0 < meter.stats(r).sends <= 2 * 6


def test_delta_validation():
    from repro.common.errors import DecompositionError
    mesh = unit_square(6)
    prob = Problem(mesh, DiffusionForm(degree=1))
    part = partition_mesh(mesh, 2, seed=0)
    with pytest.raises(DecompositionError):
        run_spmd(2, spmd_build_decomposition, prob, part, 0)
