"""Cross-cutting property-based tests (hypothesis).

These sample random problem configurations — mesh sizes, partition
counts, overlap widths, degrees, payload shapes — and assert the
structural invariants that every other component relies on.
"""

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.dd import Decomposition, Problem
from repro.fem import FunctionSpace, assemble_stiffness
from repro.fem.forms import DiffusionForm
from repro.mesh import rectangle, refine_uniform, unit_square
from repro.mpi import Meter, payload_bytes, run_spmd
from repro.partition import partition_mesh

_slow = settings(max_examples=8, deadline=None,
                 suppress_health_check=[HealthCheck.too_slow])


class TestDecompositionInvariants:
    @given(nx=st.integers(6, 12), ny=st.integers(4, 10),
           nparts=st.integers(2, 6), delta=st.integers(1, 3),
           degree=st.integers(1, 3), seed=st.integers(0, 99))
    @_slow
    def test_random_config(self, nx, ny, nparts, delta, degree, seed):
        mesh = rectangle(nx, ny)
        kappa = 1.0 + 10.0 ** (seed % 4) * \
            (mesh.cell_centroids()[:, 0] > 0.5)
        prob = Problem(mesh, DiffusionForm(degree=degree, kappa=kappa))
        part = partition_mesh(mesh, nparts, seed=seed)
        dec = Decomposition(prob, part, delta=delta)
        # partition of unity
        acc = np.zeros(prob.num_free)
        for s in dec.subdomains:
            np.add.at(acc, s.dofs, s.d)
        assert np.abs(acc - 1).max() < 1e-10
        # matvec identity
        rng = np.random.default_rng(seed)
        x = rng.standard_normal(prob.num_free)
        A = prob.matrix()
        assert np.linalg.norm(dec.matvec(x) - A @ x) <= \
            1e-9 * max(np.linalg.norm(A @ x), 1e-300)
        # Dirichlet matrices by trim
        for s in dec.subdomains:
            ref = A[s.dofs][:, s.dofs]
            assert abs(s.A_dir - ref).max() <= \
                1e-10 * max(abs(ref).max(), 1e-300)

    @given(n=st.integers(4, 10), nparts=st.integers(2, 5),
           seed=st.integers(0, 20))
    @_slow
    def test_exchange_symmetry(self, n, nparts, seed):
        """shared-index maps agree pairwise on the global dofs."""
        mesh = unit_square(n)
        prob = Problem(mesh, DiffusionForm(degree=2))
        part = partition_mesh(mesh, nparts, seed=seed)
        dec = Decomposition(prob, part, delta=1)
        for s in dec.subdomains:
            for j in s.neighbors:
                o = dec.subdomains[j]
                assert np.array_equal(s.dofs[s.shared[j]],
                                      o.dofs[o.shared[s.index]])


class TestStiffnessInvariance:
    @given(shift_x=st.floats(-3, 3), shift_y=st.floats(-3, 3),
           scale=st.floats(0.5, 4.0))
    @settings(max_examples=10, deadline=None)
    def test_translation_invariance(self, shift_x, shift_y, scale):
        """The Laplace stiffness matrix is translation-invariant and
        scales like h^{d-2} (= 1 in 2D) under uniform dilation."""
        base = unit_square(3)
        V1 = FunctionSpace(base, 2)
        A1 = assemble_stiffness(V1)
        from repro.mesh import SimplexMesh
        moved = SimplexMesh(scale * base.vertices +
                            np.array([shift_x, shift_y]), base.cells)
        V2 = FunctionSpace(moved, 2)
        A2 = assemble_stiffness(V2)
        assert abs(A1 - A2).max() < 1e-10 * abs(A1).max()


class TestRefinementProperties:
    @given(nx=st.integers(2, 6), ny=st.integers(2, 6),
           times=st.integers(1, 2))
    @settings(max_examples=10, deadline=None)
    def test_counts_and_volume(self, nx, ny, times):
        m = rectangle(nx, ny)
        r = refine_uniform(m, times)
        assert r.num_cells == m.num_cells * 4 ** times
        assert r.total_volume() == pytest.approx(m.total_volume())
        # conforming: Euler characteristic of a disc is preserved
        assert (r.num_vertices - r.edges.shape[0] + r.num_cells) == \
            (m.num_vertices - m.edges.shape[0] + m.num_cells)


class TestSimMPIProperties:
    @given(nranks=st.integers(2, 6), seed=st.integers(0, 100))
    @settings(max_examples=10, deadline=None)
    def test_allreduce_matches_numpy(self, nranks, seed):
        rng = np.random.default_rng(seed)
        data = rng.standard_normal((nranks, 5))

        def fn(comm):
            return comm.allreduce(data[comm.rank])

        out = run_spmd(nranks, fn)
        for o in out:
            assert np.allclose(o, data.sum(axis=0))

    @given(nranks=st.integers(2, 5), root=st.integers(0, 4),
           seed=st.integers(0, 50))
    @settings(max_examples=10, deadline=None)
    def test_gather_scatter_roundtrip(self, nranks, root, seed):
        root = root % nranks
        rng = np.random.default_rng(seed)
        payload = [rng.standard_normal(rng.integers(1, 6))
                   for _ in range(nranks)]

        def fn(comm):
            g = comm.gather(payload[comm.rank], root=root)
            if comm.rank == root:
                back = comm.scatter(g, root=root)
            else:
                back = comm.scatter(None, root=root)
            return back

        out = run_spmd(nranks, fn)
        for r in range(nranks):
            assert np.allclose(out[r], payload[r])

    @given(seed=st.integers(0, 100))
    @settings(max_examples=15, deadline=None)
    def test_meter_bytes_match_payload(self, seed):
        rng = np.random.default_rng(seed)
        arr = rng.standard_normal(rng.integers(1, 50))
        meter = Meter(2)

        def fn(comm):
            if comm.rank == 0:
                comm.send(arr, 1)
            else:
                comm.recv(0)

        run_spmd(2, fn, meter=meter)
        assert meter.total_bytes() == payload_bytes(arr) == arr.nbytes


class TestKrylovProperties:
    @given(n=st.integers(3, 25), seed=st.integers(0, 100),
           tol_exp=st.integers(6, 10))
    @settings(max_examples=12, deadline=None)
    def test_gmres_residual_guarantee(self, n, seed, tol_exp):
        """Whenever GMRES reports convergence, the true residual meets
        the tolerance (up to roundoff slack)."""
        from repro.krylov import gmres
        rng = np.random.default_rng(seed)
        M = rng.standard_normal((n, n))
        A = M @ M.T + n * np.eye(n)
        b = rng.standard_normal(n)
        tol = 10.0 ** (-tol_exp)
        res = gmres(A, b, tol=tol, restart=n + 2, maxiter=20 * n)
        if res.converged:
            assert np.linalg.norm(A @ res.x - b) <= \
                10 * tol * np.linalg.norm(b)
