"""Mesh-quality and geometry invariants across all generators."""

import numpy as np
import pytest

from repro.mesh import (
    box,
    cantilever_2d,
    interval_chain,
    rectangle,
    refine_uniform,
    tripod_3d,
    unit_cube,
    unit_square,
)

GENERATORS_2D = [
    ("unit_square", lambda: unit_square(6)),
    ("rectangle", lambda: rectangle(5, 3, x0=-1, x1=2, y0=0.5, y1=1.5)),
    ("cantilever", lambda: cantilever_2d(3)),
    ("chain", lambda: interval_chain(8, width=2)),
]
GENERATORS_3D = [
    ("unit_cube", lambda: unit_cube(3)),
    ("box", lambda: box(2, 3, 2, x1=2.0)),
    ("tripod", lambda: tripod_3d(2)),
]


@pytest.mark.parametrize("name,gen", GENERATORS_2D + GENERATORS_3D)
class TestGeneratorInvariants:
    def test_positive_volumes(self, name, gen):
        m = gen()
        assert np.all(m.cell_volumes() > 0)

    def test_no_orphan_vertices(self, name, gen):
        m = gen()
        used = np.unique(m.cells.ravel())
        assert used.size == m.num_vertices

    def test_no_duplicate_cells(self, name, gen):
        m = gen()
        sorted_cells = np.sort(m.cells, axis=1)
        uniq = np.unique(sorted_cells, axis=0)
        assert uniq.shape[0] == m.num_cells

    def test_conforming_facets(self, name, gen):
        """Interior facets shared by exactly 2 cells, boundary by 1 —
        the conformity requirement of the FE assembly."""
        m = gen()
        _, _, counts, _ = m._facet_data
        assert counts.min() >= 1
        assert counts.max() <= 2

    def test_boundary_nonempty(self, name, gen):
        m = gen()
        assert m.boundary_facets.shape[0] > 0

    def test_diameters_bound_volumes(self, name, gen):
        """vol <= h^dim for every simplex (a loose sanity envelope)."""
        m = gen()
        h = m.cell_diameters()
        assert np.all(m.cell_volumes() <= h ** m.dim + 1e-12)


class TestRefinementQuality:
    @pytest.mark.parametrize("gen", [lambda: unit_square(3),
                                     lambda: unit_cube(2)])
    def test_shape_regularity_preserved(self, gen):
        """Red refinement must not degrade the worst quality ratio by
        more than a constant (Bey's tetrahedral refinement guarantees
        boundedness; 2D red refinement is exactly self-similar)."""
        m = gen()

        def worst_quality(mesh):
            q = mesh.cell_volumes() / mesh.cell_diameters() ** mesh.dim
            return q.min()

        q0 = worst_quality(m)
        q2 = worst_quality(refine_uniform(m, 2))
        assert q2 >= 0.3 * q0

    def test_h_halves(self):
        m = unit_square(4)
        r = refine_uniform(m)
        assert r.h_max() == pytest.approx(m.h_max() / 2)

    def test_boundary_grows_consistently(self):
        m = unit_cube(2)
        r = refine_uniform(m)
        # each boundary triangle splits in 4
        assert r.boundary_facets.shape[0] == 4 * m.boundary_facets.shape[0]
