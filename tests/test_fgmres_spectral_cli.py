"""Tests for FGMRES, spectral partitioning and the CLI."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.cli import main as cli_main
from repro.common.errors import KrylovError, PartitionError
from repro.krylov import fgmres, gmres
from repro.mesh import unit_square
from repro.partition import (
    edge_cut,
    fiedler_vector,
    imbalance,
    partition_mesh,
    partition_spectral,
)
from repro.partition.spectral import graph_laplacian, spectral_bisect


@pytest.fixture(scope="module")
def spd():
    rng = np.random.default_rng(1)
    n = 80
    M = rng.standard_normal((n, n))
    A = sp.csr_matrix(M @ M.T + n * np.eye(n))
    return A, rng.standard_normal(n)


class TestFGMRES:
    def test_matches_gmres_fixed_preconditioner(self, spd):
        A, b = spd
        M = sp.diags(1.0 / A.diagonal())
        r1 = gmres(A, b, M=M, tol=1e-10, restart=90, maxiter=300)
        r2 = fgmres(A, b, M=M, tol=1e-10, restart=90, maxiter=300)
        assert r2.converged
        assert abs(r1.iterations - r2.iterations) <= 1
        assert np.allclose(r1.x, r2.x, atol=1e-7 * abs(r1.x).max())

    def test_variable_preconditioner_converges(self, spd):
        A, b = spd
        state = {"k": 0}

        def varM(v):
            state["k"] += 1
            return v / (1.0 + 0.2 * (state["k"] % 4))

        r = fgmres(A, b, M=varM, tol=1e-10, restart=90, maxiter=300)
        assert r.converged
        assert np.linalg.norm(A @ r.x - b) <= 1e-8 * np.linalg.norm(b)

    def test_inner_krylov_preconditioner(self, spd):
        """FGMRES with a few inner CG steps as the (variable) M."""
        from repro.krylov import cg
        A, b = spd

        def innerM(v):
            return cg(A, v, tol=1e-2, maxiter=5).x

        r = fgmres(A, b, M=innerM, tol=1e-8, restart=60, maxiter=200)
        assert r.converged

    def test_zero_rhs(self, spd):
        A, _ = spd
        assert fgmres(A, np.zeros(A.shape[0])).iterations == 0

    def test_invalid_restart(self, spd):
        A, b = spd
        with pytest.raises(KrylovError):
            fgmres(A, b, restart=0)

    def test_maxiter(self, spd):
        A, b = spd
        r = fgmres(A, b, tol=1e-14, restart=5, maxiter=4)
        assert not r.converged


class TestSpectral:
    def test_laplacian_rowsums_zero(self):
        g = unit_square(5).dual_graph
        L = graph_laplacian(g)
        assert np.abs(np.asarray(L.sum(axis=1))).max() < 1e-12

    def test_fiedler_orthogonal_to_constants(self):
        g = unit_square(6).dual_graph
        f = fiedler_vector(g)
        assert abs(f.sum()) < 1e-6
        assert np.linalg.norm(f) == pytest.approx(1.0)

    def test_fiedler_splits_path(self):
        """On a path graph the Fiedler vector is monotone: the bisection
        must cut it in the middle."""
        import scipy.sparse as sps
        n = 30
        rows = np.arange(n - 1)
        g = sps.coo_matrix((np.ones(n - 1), (rows, rows + 1)),
                           shape=(n, n))
        g = (g + g.T).tocsr()
        side = spectral_bisect(g)
        # the cut separates a contiguous prefix from a suffix
        changes = np.count_nonzero(np.diff(side.astype(int)))
        assert changes == 1

    def test_kway_balanced(self):
        m = unit_square(10)
        part = partition_spectral(m.dual_graph, 4)
        assert set(part) == {0, 1, 2, 3}
        assert imbalance(part) < 0.1

    def test_cut_competitive_with_multilevel(self):
        m = unit_square(12)
        g = m.dual_graph
        cut_s = edge_cut(g, partition_mesh(m, 4, method="spectral"))
        cut_m = edge_cut(g, partition_mesh(m, 4, method="multilevel"))
        assert cut_s <= 2.0 * cut_m

    def test_errors(self):
        g = unit_square(4).dual_graph
        with pytest.raises(PartitionError):
            partition_spectral(g, 0)


class TestCLI:
    def test_info(self, capsys):
        rc = cli_main(["info", "--problem", "diffusion2d", "--n", "8",
                       "-N", "2"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "dofs" in out and "partition imbalance" in out

    def test_solve_two_level(self, capsys):
        rc = cli_main(["solve", "--problem", "diffusion2d", "--n", "16",
                       "-N", "4", "--nev", "4", "--tol", "1e-6"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "converged" in out and "True" in out

    def test_solve_one_level_plot(self, capsys):
        rc = cli_main(["solve", "--problem", "diffusion2d", "--n", "12",
                       "-N", "2", "--levels", "1", "--plot",
                       "--maxiter", "200", "--tol", "1e-6"])
        out = capsys.readouterr().out
        assert "residual" in out
        assert rc in (0, 1)

    def test_solve_vtk_export(self, tmp_path, capsys):
        vtk = tmp_path / "sol.vtk"
        rc = cli_main(["solve", "--problem", "diffusion2d", "--n", "12",
                       "-N", "2", "--nev", "2", "--vtk", str(vtk)])
        assert rc == 0
        assert vtk.exists()
        assert "SCALARS partition" in vtk.read_text()

    def test_elasticity_problem(self, capsys):
        rc = cli_main(["solve", "--problem", "elasticity2d", "--n", "12",
                       "-N", "4", "--nev", "8", "--tol", "1e-6",
                       "--maxiter", "300"])
        assert rc == 0

    def test_unknown_problem_rejected(self):
        with pytest.raises(SystemExit):
            cli_main(["solve", "--problem", "navier-stokes"])
